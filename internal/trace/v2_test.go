package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// genRecords builds a deterministic pseudo-random record stream with
// the shapes the generators emit: clustered PCs, mixed ops, occasional
// dependence markers.
func genRecords(seed int64, n int) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	pc := uint64(0x400000)
	for i := range recs {
		pc += uint64(rng.Intn(16)) * 4
		if rng.Intn(64) == 0 {
			pc = 0x400000 + uint64(rng.Intn(1<<20)) // far jump
		}
		op := Op(rng.Intn(3))
		r := Record{PC: pc, Op: op}
		if op != NonMem {
			r.Addr = mem.Addr(rng.Uint64() >> uint(rng.Intn(40)))
			r.LoadDep = uint8(rng.Intn(4))
		}
		recs[i] = r
	}
	return recs
}

// encodeV2 packs recs into a TRC2 container with the given block size.
func encodeV2(t *testing.T, recs []Record, blockRecords int) ([]byte, string) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriterV2(&buf)
	if blockRecords > 0 {
		w.SetBlockRecords(blockRecords)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("WriteV2: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("CloseV2: %v", err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(recs))
	}
	return buf.Bytes(), w.ContentHash()
}

// decodeV2 drains a TRC2 stream, returning records and final error.
func decodeV2(data []byte) ([]Record, error) {
	fr := NewReaderV2(bytes.NewReader(data))
	var recs []Record
	for {
		rec, ok := fr.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	return recs, fr.Err()
}

func TestV2RoundTrip(t *testing.T) {
	recs := genRecords(1, 10_000)
	data, hash := encodeV2(t, recs, 777) // multiple blocks, ragged final block
	got, err := decodeV2(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
	// The reader's recomputed content hash matches the writer's.
	fr := NewReaderV2(bytes.NewReader(data))
	for {
		if _, ok := fr.Next(); !ok {
			break
		}
	}
	if fr.Err() != nil {
		t.Fatal(fr.Err())
	}
	if fr.ContentHash() != hash {
		t.Errorf("reader hash %s, writer hash %s", fr.ContentHash(), hash)
	}
	if fr.Count() != uint64(len(recs)) {
		t.Errorf("reader count %d, want %d", fr.Count(), len(recs))
	}
}

func TestV2ZeroRecords(t *testing.T) {
	data, hash := encodeV2(t, nil, 0)
	if len(data) == 0 {
		t.Fatal("zero-record TRC2 is a zero-byte file")
	}
	if !bytes.HasPrefix(data, magicV2[:]) {
		t.Fatal("zero-record TRC2 lacks magic")
	}
	got, err := decodeV2(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d records from an empty trace", len(got))
	}
	if hash == "" {
		t.Fatal("empty trace has no content hash")
	}
}

// TestV1ZeroRecordsHeader pins the satellite fix: a zero-record v1
// trace flushed without any Write must still carry the magic header,
// and read back as an empty — not invalid — trace.
func TestV1ZeroRecordsHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes(); !bytes.Equal(got, magic[:]) {
		t.Fatalf("zero-record v1 file = %v, want just the magic %v", got, magic)
	}
	fr := NewFileReader(&buf)
	if _, ok := fr.Next(); ok {
		t.Fatal("decoded a record from an empty trace")
	}
	if fr.Err() != nil {
		t.Fatalf("Err = %v, want nil for a headered empty trace", fr.Err())
	}
}

// TestV1EmptyInputIsError pins the other half of the satellite fix:
// since every written trace has a header, a zero-byte stream is a
// truncated file, not an empty trace.
func TestV1EmptyInputIsError(t *testing.T) {
	fr := NewFileReader(bytes.NewReader(nil))
	if _, ok := fr.Next(); ok {
		t.Fatal("decoded a record from empty input")
	}
	if !errors.Is(fr.Err(), io.ErrUnexpectedEOF) {
		t.Fatalf("Err = %v, want io.ErrUnexpectedEOF", fr.Err())
	}
}

// TestV1MidRecordTruncation pins the headline v1 bugfix: EOF past a
// record's op byte must surface io.ErrUnexpectedEOF instead of
// decoding as a clean, shorter trace.
func TestV1MidRecordTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Record{PC: 100, Op: Load, Addr: 0x123456, LoadDep: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := len(full) - 1; cut > 4; cut-- { // every mid-record cut
		fr := NewFileReader(bytes.NewReader(full[:cut]))
		if _, ok := fr.Next(); ok {
			t.Fatalf("cut %d: decoded a record from a truncated stream", cut)
		}
		if !errors.Is(fr.Err(), io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: Err = %v, want io.ErrUnexpectedEOF", cut, fr.Err())
		}
	}
}

// TestV1TruncationTable checks every prefix of a valid v1 file: it
// must either decode cleanly to an exact prefix of the original
// records (a cut at a record boundary — all v1's framing can offer) or
// report an error. No prefix may silently decode to anything else.
func TestV1TruncationTable(t *testing.T) {
	recs := genRecords(2, 300)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	cleanCuts := 0
	for cut := 0; cut <= len(full); cut++ {
		fr := NewFileReader(bytes.NewReader(full[:cut]))
		var got []Record
		for {
			rec, ok := fr.Next()
			if !ok {
				break
			}
			got = append(got, rec)
		}
		if err := fr.Err(); err != nil {
			continue // detected: fine
		}
		cleanCuts++
		// Clean decode: must be an exact record-boundary prefix.
		if len(got) > len(recs) {
			t.Fatalf("cut %d: decoded %d records from a %d-record trace", cut, len(got), len(recs))
		}
		for i := range got {
			if got[i] != recs[i] {
				t.Fatalf("cut %d: record %d diverged: got %+v want %+v", cut, i, got[i], recs[i])
			}
		}
		if cut == len(full) && len(got) != len(recs) {
			t.Fatalf("full file decoded %d of %d records", len(got), len(recs))
		}
	}
	if cleanCuts == 0 {
		t.Fatal("no prefix decoded cleanly, not even the full file")
	}
}

// TestV2CorruptionHarness is the acceptance-criteria harness: over a
// seeded multi-block container, flipping any single byte or truncating
// at any offset must never yield a silent wrong decode — every
// mutation either reports an error or (vacuously) decodes to the
// byte-identical record stream.
func TestV2CorruptionHarness(t *testing.T) {
	recs := genRecords(3, 1200)
	data, _ := encodeV2(t, recs, 128) // ~10 blocks + footer
	want, err := decodeV2(data)
	if err != nil {
		t.Fatalf("pristine decode: %v", err)
	}

	same := func(got []Record) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}

	// Every truncation, including the empty prefix, must be detected:
	// unlike v1, a TRC2 file cannot end anywhere but after its footer.
	for cut := 0; cut < len(data); cut++ {
		got, err := decodeV2(data[:cut])
		if err == nil {
			t.Fatalf("truncation at %d/%d decoded cleanly (%d records)", cut, len(data), len(got))
		}
	}

	// Every single-byte flip must be detected (CRC32-C catches any
	// burst <= 32 bits inside a payload; framing fields are caught by
	// structure checks, the kind whitelist, and the footer totals).
	corrupted := append([]byte(nil), data...)
	for off := 0; off < len(data); off++ {
		orig := corrupted[off]
		corrupted[off] = orig ^ 0xFF
		got, err := decodeV2(corrupted)
		if err == nil && !same(got) {
			t.Fatalf("byte flip at %d/%d decoded cleanly to a different stream (%d records, want %d)",
				off, len(data), len(got), len(want))
		}
		corrupted[off] = orig
	}
}

// TestV2SingleBitFlips samples single-bit (rather than whole-byte)
// mutations across the file, the classic storage-rot shape.
func TestV2SingleBitFlips(t *testing.T) {
	recs := genRecords(4, 600)
	data, _ := encodeV2(t, recs, 100)
	want, err := decodeV2(data)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte(nil), data...)
	for off := 0; off < len(data); off++ {
		bit := byte(1 << (off % 8))
		corrupted[off] ^= bit
		got, err := decodeV2(corrupted)
		if err == nil {
			if len(got) != len(want) {
				t.Fatalf("bit flip at %d: silent wrong-length decode (%d vs %d)", off, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("bit flip at %d: silent record corruption at %d", off, i)
				}
			}
		}
		corrupted[off] ^= bit
	}
}

// TestV2TrailingGarbage: bytes after the footer are an error, not
// ignored.
func TestV2TrailingGarbage(t *testing.T) {
	data, _ := encodeV2(t, genRecords(5, 50), 0)
	if _, err := decodeV2(append(data, 0x00)); err == nil {
		t.Fatal("trailing garbage after footer decoded cleanly")
	}
}

// TestV2HostileLength: a frame announcing a giant payload is rejected
// before allocation.
func TestV2HostileLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magicV2[:])
	hdr := make([]byte, 9)
	hdr[0] = frameBlock
	binary.LittleEndian.PutUint32(hdr[1:], 0xFFFFFFF0)
	buf.Write(hdr)
	if _, err := decodeV2(buf.Bytes()); err == nil {
		t.Fatal("hostile length prefix accepted")
	}
}

// TestV1V2Equivalence: the same records round-trip identically through
// both codecs — routing a generator through the v2 container cannot
// change what a simulation replays (which is what keeps the figure
// CSVs byte-identical).
func TestV1V2Equivalence(t *testing.T) {
	recs := genRecords(6, 5000)
	var v1 bytes.Buffer
	w1 := NewWriter(&v1)
	for _, r := range recs {
		if err := w1.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Flush(); err != nil {
		t.Fatal(err)
	}
	v2, _ := encodeV2(t, recs, 0)

	d1 := NewDecoder(bytes.NewReader(v1.Bytes()))
	d2 := NewDecoder(bytes.NewReader(v2))
	if _, ok := d1.(*FileReader); !ok {
		t.Fatalf("NewDecoder picked %T for a v1 file", d1)
	}
	if _, ok := d2.(*ReaderV2); !ok {
		t.Fatalf("NewDecoder picked %T for a v2 file", d2)
	}
	for i := 0; ; i++ {
		r1, ok1 := d1.Next()
		r2, ok2 := d2.Next()
		if ok1 != ok2 {
			t.Fatalf("record %d: v1 ok=%v, v2 ok=%v", i, ok1, ok2)
		}
		if !ok1 {
			break
		}
		if r1 != r2 {
			t.Fatalf("record %d: v1 %+v, v2 %+v", i, r1, r2)
		}
		if r1 != recs[i] {
			t.Fatalf("record %d: decoded %+v, want %+v", i, r1, recs[i])
		}
	}
	if d1.Err() != nil || d2.Err() != nil {
		t.Fatalf("decoder errors: v1=%v v2=%v", d1.Err(), d2.Err())
	}
}

// TestV2Compactness: the compressed container should beat the already
// compact v1 encoding on generator-like streams.
func TestV2Compactness(t *testing.T) {
	var recs []Record
	for i := 0; i < 20_000; i++ {
		op := NonMem
		if i%4 == 0 {
			op = Load
		}
		recs = append(recs, Record{PC: 0x400000 + uint64(i%64)*4, Op: op, Addr: mem.Addr(i * 64)})
	}
	var v1 bytes.Buffer
	w1 := NewWriter(&v1)
	for _, r := range recs {
		if err := w1.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Flush(); err != nil {
		t.Fatal(err)
	}
	v2, _ := encodeV2(t, recs, 0)
	if len(v2) >= v1.Len() {
		t.Errorf("TRC2 %d bytes >= v1 %d bytes on a compressible stream", len(v2), v1.Len())
	}
}

func TestOffsetReader(t *testing.T) {
	recs := []Record{
		{PC: 1, Op: NonMem, Addr: 0},
		{PC: 2, Op: Load, Addr: 0x100},
		{PC: 3, Op: Store, Addr: 0x200},
	}
	r := Offset(NewSliceReader(recs), 1<<40)
	got := Collect(r, 10)
	if len(got) != 3 {
		t.Fatalf("collected %d records", len(got))
	}
	if got[0].Addr != 0 {
		t.Errorf("NonMem addr offset applied: %x", got[0].Addr)
	}
	if got[1].Addr != 0x100+1<<40 || got[2].Addr != 0x200+1<<40 {
		t.Errorf("memory addrs not offset: %x %x", got[1].Addr, got[2].Addr)
	}
	if Offset(NewSliceReader(recs), 0).(*SliceReader) == nil {
		t.Error("zero offset should return the reader unchanged")
	}
}

// TestV2WriteAfterClose: the writer refuses records after Close.
func TestV2WriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriterV2(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{}); err == nil {
		t.Fatal("Write after Close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
