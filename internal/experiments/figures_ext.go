package experiments

import (
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/prefetch/ghb"
	"repro/internal/prefetch/isb"
	"repro/internal/prefetch/markov"
	"repro/internal/prefetch/nextline"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ExtZoo quantifies the paper's §2 qualitative claims about the wider
// prefetcher family tree on the irregular suite: next-line and GHB
// delta correlation (weaker correlations that fit on chip), a bounded
// on-chip Markov table (the K-successor redundancy problem), and ISB
// (PC-localized address correlation with TLB-synced off-chip metadata).
func (r *Runner) ExtZoo() *Table {
	configs := []namedPF{
		{"NextLine", func(config.Machine) prefetch.Prefetcher { return nextline.New(1) }},
		{"GHB_G/DC", func(config.Machine) prefetch.Prefetcher { return ghb.New(512) }},
		{"Markov_1MB", func(config.Machine) prefetch.Prefetcher { return markov.New(1 << 20) }},
		{"ISB", func(config.Machine) prefetch.Prefetcher { return isb.New() }},
		cfgT1M,
	}
	t := r.speedupTable("ext-zoo",
		"Extended zoo on irregular SPEC (the paper's §2 lineage, quantified)",
		workload.IrregularSuite(), configs)
	t.Note("shape target: Triage >= ISB > Markov (redundancy halves capacity) >> GHB ~ NextLine ~ 1.0")
	t.Note("ISB here pays page-granular TLB-sync metadata traffic; Markov is bounded to 1MB on-chip")
	return t
}

// ExtZooTraffic reports the traffic side of the extended zoo.
func (r *Runner) ExtZooTraffic() *Table {
	configs := []namedPF{
		{"ISB", func(config.Machine) prefetch.Prefetcher { return isb.New() }},
		cfgMISB,
		cfgT1M,
	}
	t := &Table{
		ID:     "ext-zoo-traffic",
		Title:  "Metadata organizations: relative off-chip traffic (irregular SPEC)",
		Header: []string{"benchmark", "ISB traf", "MISB traf", "Triage traf"},
	}
	suite := workload.IrregularSuite()
	bases, cells := r.launchGrid(suite, configs)
	sums := make([][]float64, len(configs))
	for si, spec := range suite {
		base := bases[si].Wait()
		row := []string{spec.Name}
		for i := range configs {
			res := cells[si][i].Wait()
			tr := 1.0
			if bt := base.TotalTraffic(); bt > 0 {
				tr = float64(res.TotalTraffic()+res.EstimatedMetadataTransfers) / float64(bt)
			}
			sums[i] = append(sums[i], tr)
			row = append(row, fmtF(tr))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean"}
	for i := range configs {
		row = append(row, fmtF(geomean(sums[i])))
	}
	t.AddRow(row...)
	t.Note("shape target: ISB > MISB > Triage (paper §2.1: 200-400%% -> 156%% -> ~59%%)")
	return t
}

// ExtUtility evaluates the paper's named future work: utility-aware
// partitioning. It must preserve Dynamic's irregular wins while
// repairing the Fig. 8 bzip2-style losses.
func (r *Runner) ExtUtility() *Table {
	cfgUtil := namedPF{"Triage_DynUtil", func(m config.Machine) prefetch.Prefetcher {
		return core.New(core.Config{Mode: core.DynamicUtility, LLCLatencyTicks: llcTicks(m)})
	}}
	t := &Table{
		ID:     "ext-utility",
		Title:  "Future-work extension: utility-aware partitioning vs Triage-Dynamic",
		Header: []string{"benchmark", "Triage_Dynamic", "Triage_DynUtil"},
	}
	suite := []workload.Spec{}
	// The capacity-sensitive regulars where Dynamic can be baited...
	for _, name := range []string{"bzip2", "milc", "zeusmp", "cactusADM", "gobmk"} {
		if s, ok := workload.ByName(name); ok {
			suite = append(suite, s)
		}
	}
	// ...plus the irregular suite, where the extension must not regress.
	suite = append(suite, workload.IrregularSuite()...)
	bases, cells := r.launchGrid(suite, []namedPF{cfgTDyn, cfgUtil})
	var dyn, util []float64
	for si, spec := range suite {
		base := bases[si].Wait()
		d := cells[si][0].Wait().SpeedupOver(base)
		u := cells[si][1].Wait().SpeedupOver(base)
		dyn = append(dyn, d)
		util = append(util, u)
		t.AddRow(spec.Name, fmtSpeedup(d), fmtSpeedup(u))
	}
	t.AddRow("geomean", fmtSpeedup(geomean(dyn)), fmtSpeedup(geomean(util)))
	t.Note("shape target: DynUtil >= Dynamic on capacity-sensitive regulars, ~equal on irregulars")
	return t
}

// ExtLadder evaluates the paper's §3 time-shared-OPTgen sketch: a
// four-rung ladder (256KB..2MB) against the fixed two-point Dynamic
// scheme. The ladder can reach sizes Dynamic cannot express (256KB,
// 2MB) at the cost of slower convergence.
func (r *Runner) ExtLadder() *Table {
	cfgLadder := namedPF{"Triage_Ladder", func(m config.Machine) prefetch.Prefetcher {
		return core.New(core.Config{Mode: core.DynamicLadder, LLCLatencyTicks: llcTicks(m)})
	}}
	t := &Table{
		ID:     "ext-ladder",
		Title:  "Extension: time-shared OPTgen ladder (256KB-2MB) vs two-point Dynamic",
		Header: []string{"benchmark", "Triage_Dynamic", "Triage_Ladder"},
	}
	suite := workload.IrregularSuite()
	bases, cells := r.launchGrid(suite, []namedPF{cfgTDyn, cfgLadder})
	var dyn, lad []float64
	for si, spec := range suite {
		base := bases[si].Wait()
		d := cells[si][0].Wait().SpeedupOver(base)
		l := cells[si][1].Wait().SpeedupOver(base)
		dyn = append(dyn, d)
		lad = append(lad, l)
		t.AddRow(spec.Name, fmtSpeedup(d), fmtSpeedup(l))
	}
	t.AddRow("geomean", fmtSpeedup(geomean(dyn)), fmtSpeedup(geomean(lad)))
	t.Note("shape target: ladder within a few points of Dynamic; differences reflect its wider size range and slower convergence")
	return t
}

// ExtLLCPolicy checks an orthogonal ablation: does running Hawkeye as
// the LLC *data* replacement policy change Triage's picture? (The paper
// keeps LLC data replacement fixed; this bounds that choice.)
func (r *Runner) ExtLLCPolicy() *Table {
	t := &Table{
		ID:     "ext-llc-policy",
		Title:  "LLC data replacement under Triage: LRU vs Hawkeye",
		Header: []string{"benchmark", "Triage/LRU-LLC", "Triage/Hawkeye-LLC"},
	}
	suite := workload.IrregularSuite()
	bases, cells := r.launchGrid(suite, []namedPF{cfgT1M})
	hawkFs := make([]*Future[sim.Result], len(suite))
	for si, spec := range suite {
		hawkFs[si] = r.runSingleF(spec, pfTriageStatic(1<<20), func(o *sim.Options) {
			o.LLCPolicy = "hawkeye"
		})
	}
	var lru, hawk []float64
	for si, spec := range suite {
		base := bases[si].Wait()
		l := cells[si][0].Wait().SpeedupOver(base)
		h := hawkFs[si].Wait().SpeedupOver(base)
		lru = append(lru, l)
		hawk = append(hawk, h)
		t.AddRow(spec.Name, fmtSpeedup(l), fmtSpeedup(h))
	}
	t.AddRow("geomean", fmtSpeedup(geomean(lru)), fmtSpeedup(geomean(hawk)))
	t.Note("shape target: second-order effect either way (footprints >> LLC)")
	return t
}
