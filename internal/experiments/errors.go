package experiments

import (
	"fmt"
	"runtime/debug"
	"strings"

	"repro/internal/sim"
)

// RunError is the structured failure of one pooled run: what key it
// was, why it failed, how many attempts were made, and — for panics —
// the stack captured at the panic site. Futures resolve with a
// RunError instead of hanging, so a crashing cell degrades into an
// annotated error row while sibling runs complete.
type RunError struct {
	// Key is the single-flight cache key ("bench/config"); "run" for
	// jobs scheduled outside the cache.
	Key string
	// Reason classifies the failure: "panic", "aborted" (watchdog
	// deadline/stall), or "fault" (injected by Params.FaultHook).
	Reason string
	// Attempts is how many times the run was tried (retries included).
	Attempts int
	// Transient marks failures eligible for retry (injected faults only;
	// panics and watchdog aborts are deterministic and never retried).
	Transient bool
	// Err is the underlying panic value or injected error.
	Err error
	// Stack is the goroutine stack at the panic site (nil for non-panic
	// failures).
	Stack []byte
}

func (e *RunError) Error() string {
	key := e.Key
	if key == "" {
		key = "run"
	}
	if e.Attempts > 1 {
		return fmt.Sprintf("%s failed (%s, %d attempts): %v", key, e.Reason, e.Attempts, e.Err)
	}
	return fmt.Sprintf("%s failed (%s): %v", key, e.Reason, e.Err)
}

func (e *RunError) Unwrap() error { return e.Err }

// asRunError normalizes a recovered panic value into a *RunError,
// capturing the stack for raw panics. Called inside the deferred
// recover, so debug.Stack still sees the panic origin frames.
func asRunError(rec any) *RunError {
	switch v := rec.(type) {
	case *RunError:
		return v
	case *sim.Aborted:
		return &RunError{Reason: "aborted", Err: v}
	case error:
		return &RunError{Reason: "panic", Err: v, Stack: debug.Stack()}
	default:
		return &RunError{Reason: "panic", Err: fmt.Errorf("%v", v), Stack: debug.Stack()}
	}
}

// stackLines trims a captured stack to at most n lines for table notes.
func stackLines(stack []byte, n int) []string {
	if len(stack) == 0 {
		return nil
	}
	lines := strings.Split(strings.TrimRight(string(stack), "\n"), "\n")
	if len(lines) > n {
		rest := len(lines) - n
		lines = append(lines[:n:n], fmt.Sprintf("... (%d more stack lines)", rest))
	}
	return lines
}

// errorTable renders a whole-experiment failure as a table so sibling
// figures still print; the run exits nonzero via AnyFailed.
func errorTable(e Experiment, err *RunError) *Table {
	t := &Table{
		ID:     e.ID,
		Title:  e.Short + " — FAILED",
		Header: []string{"status", "error"},
		Failed: true,
	}
	t.AddRow("error", err.Error())
	t.Note("experiment failed; sibling experiments completed normally")
	for _, l := range stackLines(err.Stack, 24) {
		t.Note("%s", l)
	}
	return t
}
