package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
)

// testFP opens test checkpoints under the tiny-run fingerprint, the
// same way cmd/experiments stamps a -resume directory.
func testFP() string { return tinyParams().Fingerprint(config.Default(1)) }

// runWithCheckpoint executes the given experiments with a checkpoint
// attached, returning the concatenated CSV output and the runner.
func runWithCheckpoint(t *testing.T, dir string, ids []string) ([]byte, *Runner) {
	t.Helper()
	ck, err := OpenCheckpoint(dir, testFP())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunnerPool(tinyParams(), NewPool(4))
	r.SetCheckpoint(ck)
	var es []Experiment
	for _, id := range ids {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		es = append(es, e)
	}
	var buf bytes.Buffer
	for _, tab := range RunAll(r, es) {
		if err := tab.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), r
}

// TestCheckpointResumeByteIdentical is the acceptance criterion: a
// second invocation over a complete checkpoint simulates nothing,
// restores every cell from disk, and emits byte-identical tables.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	dir := t.TempDir()
	first, r1 := runWithCheckpoint(t, dir, []string{"fig05"})
	if r1.Runs() == 0 {
		t.Fatal("first run simulated nothing")
	}
	second, r2 := runWithCheckpoint(t, dir, []string{"fig05"})
	if !bytes.Equal(first, second) {
		t.Errorf("resumed CSV differs from the original:\n--- fresh ---\n%s\n--- resumed ---\n%s", first, second)
	}
	if got := r2.Runs(); got != 0 {
		t.Errorf("resumed run re-simulated %d cells, want 0", got)
	}
	if r2.Restored() != r1.Runs() {
		t.Errorf("restored %d cells, want %d", r2.Restored(), r1.Runs())
	}
}

// TestCheckpointPartialResume truncates the store to half its records
// (modelling a killed sweep) and verifies the resumed run simulates
// only the missing cells while still producing identical output.
func TestCheckpointPartialResume(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	dir := t.TempDir()
	first, r1 := runWithCheckpoint(t, dir, []string{"fig05"})
	total := r1.Runs()

	path := filepath.Join(dir, checkpointFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// One line per run plus the fingerprint header.
	records := bytes.Count(data, []byte("\n")) - 1
	if uint64(records) != total {
		t.Fatalf("checkpoint holds %d records for %d runs", records, total)
	}
	keep := records / 2
	if keep < 1 {
		t.Fatalf("need at least 2 records, have %d", records)
	}
	off := 0
	for i := 0; i < keep+1; i++ { // +1 keeps the header line
		off += bytes.IndexByte(data[off:], '\n') + 1
	}
	if err := os.WriteFile(path, data[:off], 0o644); err != nil {
		t.Fatal(err)
	}

	second, r2 := runWithCheckpoint(t, dir, []string{"fig05"})
	if !bytes.Equal(first, second) {
		t.Errorf("partially resumed CSV differs from the original:\n--- fresh ---\n%s\n--- resumed ---\n%s", first, second)
	}
	if got := r2.Restored(); got != uint64(keep) {
		t.Errorf("restored %d cells, want %d", got, keep)
	}
	if got := r2.Runs(); got != total-uint64(keep) {
		t.Errorf("re-simulated %d cells, want %d", got, total-uint64(keep))
	}
}

// TestCheckpointTornTail verifies crash safety: a partial record at the
// end of the file (a write cut off by SIGKILL) is discarded on open,
// the complete records survive, and subsequent appends land cleanly.
func TestCheckpointTornTail(t *testing.T) {
	dir := t.TempDir()
	ck, err := OpenCheckpoint(dir, testFP())
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Result{PrefetchesIssued: 7}
	ck.Put("a/b", res, []byte("{\"s\":1}\n"))
	ck.Put("c/d", res, nil)
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, checkpointFile)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":2,"key":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ck2, err := OpenCheckpoint(dir, testFP())
	if err != nil {
		t.Fatalf("torn tail rejected the whole checkpoint: %v", err)
	}
	if got := ck2.Len(); got != 2 {
		t.Errorf("loaded %d records, want 2 (torn record dropped)", got)
	}
	got, samples, ok := ck2.Get("a/b")
	if !ok || got.PrefetchesIssued != 7 {
		t.Errorf("record a/b = (%+v, %t), want the persisted result", got, ok)
	}
	if string(samples) != "{\"s\":1}\n" {
		t.Errorf("samples = %q, want the persisted series", samples)
	}
	ck2.Put("e/f", res, nil)
	if err := ck2.Close(); err != nil {
		t.Fatal(err)
	}

	ck3, err := OpenCheckpoint(dir, testFP())
	if err != nil {
		t.Fatal(err)
	}
	if got := ck3.Len(); got != 3 {
		t.Errorf("after append-and-reopen: %d records, want 3", got)
	}
	if _, _, ok := ck3.Get("e/f"); !ok {
		t.Error("record appended after truncation did not survive reopen")
	}
	ck3.Close()
}

// TestCheckpointVersionMismatch ensures a store written by a different
// format version is refused rather than silently misread.
func TestCheckpointVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	hdr := `{"v":99,"fp":"whatever"}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, checkpointFile), []byte(hdr), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(dir, testFP()); err == nil {
		t.Fatal("opened a checkpoint from a future format version")
	}
}

// TestCheckpointFingerprintMismatch is the stale-result guard: a store
// written under one configuration refuses to open under another, and
// still opens under its own.
func TestCheckpointFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	ck, err := OpenCheckpoint(dir, testFP())
	if err != nil {
		t.Fatal(err)
	}
	ck.Put("a/b", sim.Result{}, nil)
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	other := FullParams().Fingerprint(config.Default(1))
	if other == testFP() {
		t.Fatal("test needs two distinct fingerprints")
	}
	if _, err := OpenCheckpoint(dir, other); err == nil {
		t.Fatal("store opened under a different configuration fingerprint")
	}
	ck2, err := OpenCheckpoint(dir, testFP())
	if err != nil {
		t.Fatalf("store refused its own fingerprint: %v", err)
	}
	if !ck2.Has("a/b") {
		t.Error("record lost across reopen")
	}
	ck2.Close()
}

// TestCheckpointBlobs covers the service's opaque payloads: blob and
// run records share a key space but do not cross-read.
func TestCheckpointBlobs(t *testing.T) {
	dir := t.TempDir()
	ck, err := OpenCheckpoint(dir, testFP())
	if err != nil {
		t.Fatal(err)
	}
	ck.PutBlob("fig/x", []byte(`{"table":1}`))
	ck.Put("run/y", sim.Result{PrefetchesIssued: 3}, nil)
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	ck2, err := OpenCheckpoint(dir, testFP())
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if blob, ok := ck2.GetBlob("fig/x"); !ok || string(blob) != `{"table":1}` {
		t.Errorf("GetBlob = (%q, %t), want the persisted blob", blob, ok)
	}
	if _, _, ok := ck2.Get("fig/x"); ok {
		t.Error("Get served a blob record as a run")
	}
	if _, ok := ck2.GetBlob("run/y"); ok {
		t.Error("GetBlob served a run record as a blob")
	}
	if !ck2.Has("fig/x") || !ck2.Has("run/y") {
		t.Error("Has missed a stored key")
	}
}
