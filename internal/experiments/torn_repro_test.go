package experiments

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// Repro: a torn (short) append followed by a successful retry glues
// the retried record onto the torn prefix; on reopen that record is
// quarantined even though Put acknowledged it as durable.
func TestTornAppendMergesIntoNextRecord(t *testing.T) {
	mem := vfs.NewMem(1)
	faulty := vfs.NewFaulty(mem, vfs.Plan{})
	c, err := OpenCheckpointFS(faulty, "store", "fp")
	if err != nil {
		t.Fatal(err)
	}
	// Find a seed whose first write-roll injects a SHORT write with a
	// non-empty prefix.
	var seed int64
	for seed = 0; seed < 10000; seed++ {
		f := vfs.NewFaulty(vfs.NewMem(0), vfs.Plan{Seed: seed, PWrite: 1, ShortWrites: true})
		fh, _ := f.OpenFile("probe", 0x40|0x1, 0o644) // O_CREATE|O_WRONLY
		n, err := fh.Write(make([]byte, 100))
		if err != nil && n > 0 {
			break
		}
	}
	if seed == 10000 {
		t.Skip("no short-write seed found")
	}
	faulty.SetPlan(vfs.Plan{Seed: seed, PWrite: 1, ShortWrites: true})
	if err := c.Put("job-a", sim.Result{}, nil); err == nil {
		t.Fatal("expected injected write failure")
	}
	faulty.Heal()
	// Retry, as the service's recovery probe does. This is acknowledged
	// as durable (nil error, fsynced).
	if err := c.Put("job-a", sim.Result{}, nil); err != nil {
		t.Fatalf("retry should succeed: %v", err)
	}
	if err := c.Close(); err == nil {
		t.Log("close reported latched error or nil")
	}
	// Restart on the same bytes.
	c2, err := OpenCheckpointFS(mem, "store", "fp")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c2.Get("job-a"); !ok {
		t.Fatalf("acknowledged-durable record lost after restart (quarantined=%d)", c2.Quarantined())
	}
}
