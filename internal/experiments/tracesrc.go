package experiments

import (
	"fmt"
	"sync"

	"repro/internal/trace"
)

// The process-wide trace corpus, resolving RunSpec.Trace ids to
// materialized TRC2 traces. Like sim.GlobalWarmCache it is configured
// once at process start (triagesim/triaged -corpus) and read by every
// run; a RunSpec naming a trace without a corpus configured fails
// validation, loudly, before any simulation starts.
var (
	traceCorpusMu sync.RWMutex
	traceCorpus   *trace.Corpus
)

// SetTraceCorpus opens (creating if needed) the corpus directory and
// makes it the process-wide trace source for RunSpec.Trace ids.
func SetTraceCorpus(dir string) error {
	c, err := trace.OpenCorpus(dir)
	if err != nil {
		return err
	}
	traceCorpusMu.Lock()
	traceCorpus = c
	traceCorpusMu.Unlock()
	return nil
}

// TraceCorpus returns the configured corpus, or nil.
func TraceCorpus() *trace.Corpus {
	traceCorpusMu.RLock()
	defer traceCorpusMu.RUnlock()
	return traceCorpus
}

// resolveTrace validates a RunSpec trace id against the configured
// corpus, returning the canonical id.
func resolveTrace(id string) (string, error) {
	canon, err := trace.CanonicalTraceID(id)
	if err != nil {
		return "", err
	}
	c := TraceCorpus()
	if c == nil {
		return "", fmt.Errorf("spec names trace %s but no trace corpus is configured (-corpus)", canon)
	}
	if !c.Has(canon) {
		return "", fmt.Errorf("trace %s not in corpus %s (tracegen -corpus to ingest)", canon, c.Dir())
	}
	return canon, nil
}
