package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

// FuzzCheckpointParse throws arbitrary bytes at the store scanner.
// The invariants: never panic, never claim a clean prefix longer than
// the input, and — when the parse succeeds — re-serializing the
// surviving records as a fresh v3 store must parse back to the same
// records with nothing quarantined (a quarantined-and-compacted store
// is stable, not lossy-on-every-open).
func FuzzCheckpointParse(f *testing.F) {
	const fp = "fuzz-fp"
	hdr, _ := json.Marshal(checkpointHeader{V: checkpointVersion, FP: fp})
	rec, _ := json.Marshal(checkpointRecord{V: checkpointVersion, Key: "a/b", Result: sim.Result{PrefetchesIssued: 3}})
	valid := append(append(append([]byte{}, hdr...), '\n'), frameRecord(rec)...)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("{"))
	hdr2, _ := json.Marshal(checkpointHeader{V: checkpointVersionV2, FP: fp})
	rec2, _ := json.Marshal(checkpointRecord{V: checkpointVersionV2, Key: "a/b"})
	f.Add(append(append(append(append([]byte{}, hdr2...), '\n'), rec2...), '\n'))
	f.Add(append(append([]byte{}, hdr...), "\ndeadbeef {\"v\":3,\"key\":\"x\"}\n"...))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := parseStore(data, fp)
		if err != nil {
			return
		}
		if p.good > len(data) {
			t.Fatalf("clean prefix %d exceeds input length %d", p.good, len(data))
		}
		var buf bytes.Buffer
		buf.Write(hdr)
		buf.WriteByte('\n')
		for _, r := range p.recs {
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatalf("surviving record does not re-marshal: %v", err)
			}
			buf.Write(frameRecord(b))
		}
		p2, err := parseStore(buf.Bytes(), fp)
		if err != nil {
			t.Fatalf("compacted store does not re-parse: %v", err)
		}
		if len(p2.quarantined) != 0 || p2.rewrite {
			t.Fatalf("compacted store still dirty: %d quarantined, rewrite=%t", len(p2.quarantined), p2.rewrite)
		}
		if len(p2.recs) != len(p.recs) {
			t.Fatalf("compaction lost records: %d -> %d", len(p.recs), len(p2.recs))
		}
		for i := range p2.recs {
			if p2.recs[i].Key != p.recs[i].Key {
				t.Fatalf("record %d key changed across compaction: %q -> %q", i, p.recs[i].Key, p2.recs[i].Key)
			}
		}
	})
}
