package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Pool bounds the number of simulations executing concurrently. Figure
// coordinators run on plain goroutines and never hold a worker slot
// while waiting on a Future, so the pool cannot deadlock: every job it
// admits is an independent leaf simulation.
type Pool struct {
	sem  chan struct{}
	prog atomic.Pointer[telemetry.PoolProgress]
}

// SetProgress attaches a live progress tracker; workers report busy/
// idle transitions around every pooled job. The pointer is atomic so a
// tracker attached after the first Go (cmd tools wire flags late)
// cannot race the workers reading it.
func (p *Pool) SetProgress(prog *telemetry.PoolProgress) { p.prog.Store(prog) }

// progress returns the attached tracker, or nil.
func (p *Pool) progress() *telemetry.PoolProgress { return p.prog.Load() }

// NewPool returns a pool running at most workers simulations at once.
// workers < 1 is clamped to 1 (the sequential engine, -j 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// DefaultPool sizes a pool to the machine (GOMAXPROCS workers).
func DefaultPool() *Pool { return NewPool(runtime.GOMAXPROCS(0)) }

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// Future is the eventual result of a pooled computation. A panic
// inside the computation resolves the Future with a *RunError instead
// of leaving waiters blocked forever.
type Future[T any] struct {
	done chan struct{}
	val  T
	err  *RunError
}

// Wait blocks until the computation finishes and returns its result.
// If the computation failed, Wait re-panics with its *RunError — the
// coordinator that collects the cell decides how to degrade (RunOne
// turns it into an error table; speedupTable into an error row).
func (f *Future[T]) Wait() T {
	<-f.done
	if f.err != nil {
		panic(f.err)
	}
	return f.val
}

// Result blocks until the computation finishes and returns its value
// and failure, if any — the non-panicking collection path.
func (f *Future[T]) Result() (T, *RunError) {
	<-f.done
	return f.val, f.err
}

// Resolved returns an already-completed Future holding v (checkpoint
// hits resolve instantly without consuming a worker slot).
func Resolved[T any](v T) *Future[T] {
	f := &Future[T]{done: make(chan struct{}), val: v}
	close(f.done)
	return f
}

// Go schedules fn on the pool and returns its Future. fn runs once a
// worker slot is free; slots are held only for the duration of fn. A
// panic in fn is recovered into the Future's *RunError; the done
// channel closes on every path (deferred first, so it runs after the
// recover has stored the error).
func Go[T any](p *Pool, fn func() T) *Future[T] {
	f := &Future[T]{done: make(chan struct{})}
	go func() {
		defer close(f.done)
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		if prog := p.progress(); prog != nil {
			prog.WorkerStart()
			defer prog.WorkerDone()
		}
		defer func() {
			if rec := recover(); rec != nil {
				f.err = asRunError(rec)
			}
		}()
		f.val = fn()
	}()
	return f
}

// Guarded runs one simulation under the watchdog configured by
// deadline and stall (either may be zero). mkHooks builds the run's
// telemetry hooks; when a watchdog is armed the hooks gain a RunWatch
// so the simulator can observe the cancellation — a Watch already
// attached by mkHooks is reused, so callers that bridge cancellation
// elsewhere (the service annotates the job's trace span) keep their
// registration. A panic (including a watchdog abort) is re-thrown as
// a *RunError tagged with key.
func Guarded(key string, deadline, stall time.Duration, mkHooks func() *telemetry.Hooks, run func(*telemetry.Hooks) sim.Result) sim.Result {
	hooks := mkHooks()
	if deadline > 0 || stall > 0 {
		if hooks == nil {
			hooks = &telemetry.Hooks{}
		}
		if hooks.Watch == nil {
			hooks.Watch = telemetry.NewRunWatch()
		}
		defer telemetry.StartWatchdog(hooks.Watch, deadline, stall)()
	}
	defer func() {
		if rec := recover(); rec != nil {
			err := asRunError(rec)
			if err.Key == "" {
				err.Key = key
			}
			if err.Attempts == 0 {
				err.Attempts = 1
			}
			panic(err)
		}
	}()
	return run(hooks)
}

// --- Runner integration ---

// execute runs one keyed job with bounded, deterministic retry: only
// failures marked Transient (injected by Params.FaultHook) are
// retried, up to Params.Retries extra attempts. Panics and watchdog
// aborts are deterministic, so retrying them would just repeat the
// failure; they propagate immediately.
func (r *Runner) execute(key string, run func(*telemetry.Hooks) sim.Result) sim.Result {
	for attempt := 1; ; attempt++ {
		res, err := r.tryRun(key, attempt, run)
		if err == nil {
			return res
		}
		err.Key, err.Attempts = key, attempt
		if !err.Transient || attempt > r.P.Retries {
			panic(err)
		}
	}
}

// tryRun performs one attempt, converting any panic into the returned
// *RunError. The fault hook fires before the simulation so injected
// failures cost nothing to retry.
func (r *Runner) tryRun(key string, attempt int, run func(*telemetry.Hooks) sim.Result) (res sim.Result, rerr *RunError) {
	defer func() {
		if rec := recover(); rec != nil {
			rerr = asRunError(rec)
		}
	}()
	if hook := r.P.FaultHook; hook != nil {
		if err := hook(key, attempt); err != nil {
			return sim.Result{}, &RunError{Reason: "fault", Transient: true, Err: err}
		}
	}
	return Guarded(key, r.P.Deadline, r.P.StallTimeout, r.newHooks, run), nil
}

// record accumulates a finished run's cost into the runner's counters
// (the bench harness reports simulated instructions per second).
func (r *Runner) record(res sim.Result) sim.Result {
	r.runs.Add(1)
	r.simInstr.Add(res.SimulatedInstructions)
	if p := r.pool.progress(); p != nil {
		p.RunDone()
	}
	return res
}

// newHooks builds the per-run telemetry hooks: a sampler when the
// Params ask for one, and the pool's progress tracker when attached.
// Returns nil when both are off so runs stay on the zero-cost path
// (Guarded adds a watch on top when a watchdog is armed).
func (r *Runner) newHooks() *telemetry.Hooks {
	var h telemetry.Hooks
	if r.P.SampleEvery > 0 {
		h.Sampler = telemetry.NewSampler(r.P.SampleEvery)
	}
	if prog := r.pool.progress(); prog != nil {
		h.Progress = prog
	}
	if h.Sampler == nil && h.Progress == nil {
		return nil
	}
	return &h
}

// storeSamples persists one cached run's sampled series as JSONL,
// keyed like the single-flight cache ("bench/config"). An encoding
// failure does not fail the run (the result is still good); it is
// recorded and surfaced through SampleErrors instead of vanishing.
func (r *Runner) storeSamples(key string, hooks *telemetry.Hooks) {
	if hooks == nil || hooks.Sampler == nil {
		return
	}
	var buf bytes.Buffer
	if err := hooks.Sampler.WriteJSONL(&buf); err != nil {
		r.mu.Lock()
		if r.sampleErrs == nil {
			r.sampleErrs = make(map[string]error)
		}
		r.sampleErrs[key] = fmt.Errorf("sample series for %s dropped: %w", key, err)
		r.mu.Unlock()
		return
	}
	r.mu.Lock()
	if r.samples == nil {
		r.samples = make(map[string][]byte)
	}
	r.samples[key] = buf.Bytes()
	r.mu.Unlock()
}

// SampleSeries returns the JSONL time series of every cached
// single-core run, keyed "bench/config". Empty unless Params.
// SampleEvery was set.
func (r *Runner) SampleSeries() map[string][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]byte, len(r.samples))
	for k, v := range r.samples {
		out[k] = v
	}
	return out
}

// SampleErrors returns the series that failed to encode, keyed like
// SampleSeries. The runs themselves succeeded; only their telemetry
// was lost.
func (r *Runner) SampleErrors() map[string]error {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]error, len(r.sampleErrs))
	for k, v := range r.sampleErrs {
		out[k] = v
	}
	return out
}

// Runs returns how many simulations this runner actually executed
// (cache hits and checkpoint-restored cells do not count — the
// single-flight cache guarantees each distinct configuration is
// simulated exactly once).
func (r *Runner) Runs() uint64 { return r.runs.Load() }

// Restored returns how many cells were satisfied from the checkpoint
// instead of being simulated.
func (r *Runner) Restored() uint64 { return r.restored.Load() }

// SimulatedInstructions returns the total instructions stepped by this
// runner's simulations, including warmup and contention-sustain work.
func (r *Runner) SimulatedInstructions() uint64 { return r.simInstr.Load() }

// singleF returns the Future of one cached benchmark x prefetcher run,
// starting it if this is the first request. The per-key Future doubles
// as single-flight dedup: concurrent figures that share a baseline wait
// on the same Future instead of re-simulating it. With a checkpoint
// attached, a key already in the store resolves instantly from disk.
func (r *Runner) singleF(spec workload.Spec, cfg namedPF) *Future[sim.Result] {
	key := spec.Name + "/" + cfg.name
	r.mu.Lock()
	f, ok := r.cache[key]
	if !ok {
		if res, samples, hit := r.checkpointGet(key); hit {
			f = Resolved(res)
			if len(samples) > 0 {
				if r.samples == nil {
					r.samples = make(map[string][]byte)
				}
				r.samples[key] = samples
			}
			r.restored.Add(1)
		} else {
			f = Go(r.pool, func() sim.Result {
				res := r.execute(key, func(hooks *telemetry.Hooks) sim.Result {
					rr := r.record(runSingle(r.P, spec, cfg.name, cfg.f, nil, hooks))
					r.storeSamples(key, hooks)
					return rr
				})
				r.checkpointPut(key, res)
				return res
			})
		}
		r.cache[key] = f
	}
	r.mu.Unlock()
	return f
}

// checkpointGet probes the attached checkpoint (nil-safe). Called with
// r.mu held; the Checkpoint has its own lock and never calls back.
func (r *Runner) checkpointGet(key string) (sim.Result, []byte, bool) {
	if r.ckpt == nil {
		return sim.Result{}, nil, false
	}
	return r.ckpt.Get(key)
}

// checkpointPut persists one completed run plus its sampled series.
func (r *Runner) checkpointPut(key string, res sim.Result) {
	if r.ckpt == nil {
		return
	}
	r.mu.Lock()
	samples := r.samples[key]
	r.mu.Unlock()
	r.ckpt.Put(key, res, samples)
}

// runSingleF schedules an uncached single-core run (mutated machines,
// one-off configurations) on the pool. No warm-snapshot key: a mutated
// machine's warm prefix has no stable process-wide name.
func (r *Runner) runSingleF(spec workload.Spec, factory pfFactory, mutate func(*sim.Options)) *Future[sim.Result] {
	key := spec.Name + "/adhoc"
	return Go(r.pool, func() sim.Result {
		return r.execute(key, func(hooks *telemetry.Hooks) sim.Result {
			return r.record(runSingle(r.P, spec, "", factory, mutate, hooks))
		})
	})
}

// runMixF schedules one multi-programmed mix on the pool. pfName names
// the prefetcher configuration for warm-snapshot reuse ("" disables).
func (r *Runner) runMixF(mix workload.MixSpec, pfName string, factory pfFactory) *Future[sim.Result] {
	return Go(r.pool, func() sim.Result {
		return r.execute(mix.Name, func(hooks *telemetry.Hooks) sim.Result {
			return r.record(runMix(r.P, mix, pfName, factory, hooks))
		})
	})
}

// runRateF schedules one N-copy server run on the pool. pfName names
// the prefetcher configuration for warm-snapshot reuse ("" disables).
func (r *Runner) runRateF(spec workload.Spec, cores int, pfName string, factory pfFactory) *Future[sim.Result] {
	key := fmt.Sprintf("%s/x%d", spec.Name, cores)
	return Go(r.pool, func() sim.Result {
		return r.execute(key, func(hooks *telemetry.Hooks) sim.Result {
			return r.record(runRate(r.P, spec, cores, pfName, factory, hooks))
		})
	})
}

// RunAll executes the given experiments, each on its own coordinator
// goroutine so their simulations interleave on the pool, and returns
// the tables in input order. The single-flight cache keeps shared
// baselines simulated exactly once even when figures race to them, so
// the output is byte-identical to a sequential run. A failing
// experiment yields an error table (RunOne); its siblings complete.
func RunAll(r *Runner, es []Experiment) []*Table {
	tables := make([]*Table, len(es))
	var wg sync.WaitGroup
	for i, e := range es {
		wg.Add(1)
		go func(i int, e Experiment) {
			defer wg.Done()
			tables[i] = RunOne(r, e)
			if p := r.pool.progress(); p != nil {
				p.UnitDone()
			}
		}(i, e)
	}
	wg.Wait()
	return tables
}
