package experiments

import (
	"bytes"
	"runtime"
	"sync"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Pool bounds the number of simulations executing concurrently. Figure
// coordinators run on plain goroutines and never hold a worker slot
// while waiting on a Future, so the pool cannot deadlock: every job it
// admits is an independent leaf simulation.
type Pool struct {
	sem  chan struct{}
	prog *telemetry.PoolProgress
}

// SetProgress attaches a live progress tracker; workers report busy/
// idle transitions around every pooled job.
func (p *Pool) SetProgress(prog *telemetry.PoolProgress) { p.prog = prog }

// NewPool returns a pool running at most workers simulations at once.
// workers < 1 is clamped to 1 (the sequential engine, -j 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// DefaultPool sizes a pool to the machine (GOMAXPROCS workers).
func DefaultPool() *Pool { return NewPool(runtime.GOMAXPROCS(0)) }

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// Future is the eventual result of a pooled computation.
type Future[T any] struct {
	done chan struct{}
	val  T
}

// Wait blocks until the computation finishes and returns its result.
func (f *Future[T]) Wait() T {
	<-f.done
	return f.val
}

// Go schedules fn on the pool and returns its Future. fn runs once a
// worker slot is free; slots are held only for the duration of fn.
func Go[T any](p *Pool, fn func() T) *Future[T] {
	f := &Future[T]{done: make(chan struct{})}
	go func() {
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		if p.prog != nil {
			p.prog.WorkerStart()
			defer p.prog.WorkerDone()
		}
		f.val = fn()
		close(f.done)
	}()
	return f
}

// --- Runner integration ---

// record accumulates a finished run's cost into the runner's counters
// (the bench harness reports simulated instructions per second).
func (r *Runner) record(res sim.Result) sim.Result {
	r.runs.Add(1)
	r.simInstr.Add(res.SimulatedInstructions)
	if p := r.pool.prog; p != nil {
		p.RunDone()
	}
	return res
}

// newHooks builds the per-run telemetry hooks: a sampler when the
// Params ask for one, and the pool's progress tracker when attached.
// Returns nil when both are off so runs stay on the zero-cost path.
func (r *Runner) newHooks() *telemetry.Hooks {
	var h telemetry.Hooks
	if r.P.SampleEvery > 0 {
		h.Sampler = telemetry.NewSampler(r.P.SampleEvery)
	}
	if r.pool.prog != nil {
		h.Progress = r.pool.prog
	}
	if h.Sampler == nil && h.Progress == nil {
		return nil
	}
	return &h
}

// storeSamples persists one cached run's sampled series as JSONL,
// keyed like the single-flight cache ("bench/config").
func (r *Runner) storeSamples(key string, hooks *telemetry.Hooks) {
	if hooks == nil || hooks.Sampler == nil {
		return
	}
	var buf bytes.Buffer
	if err := hooks.Sampler.WriteJSONL(&buf); err != nil {
		return
	}
	r.mu.Lock()
	if r.samples == nil {
		r.samples = make(map[string][]byte)
	}
	r.samples[key] = buf.Bytes()
	r.mu.Unlock()
}

// SampleSeries returns the JSONL time series of every cached
// single-core run, keyed "bench/config". Empty unless Params.
// SampleEvery was set.
func (r *Runner) SampleSeries() map[string][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]byte, len(r.samples))
	for k, v := range r.samples {
		out[k] = v
	}
	return out
}

// Runs returns how many simulations this runner actually executed
// (cache hits do not count — the single-flight cache guarantees each
// distinct configuration is simulated exactly once).
func (r *Runner) Runs() uint64 { return r.runs.Load() }

// SimulatedInstructions returns the total instructions stepped by this
// runner's simulations, including warmup and contention-sustain work.
func (r *Runner) SimulatedInstructions() uint64 { return r.simInstr.Load() }

// singleF returns the Future of one cached benchmark x prefetcher run,
// starting it if this is the first request. The per-key Future doubles
// as single-flight dedup: concurrent figures that share a baseline wait
// on the same Future instead of re-simulating it.
func (r *Runner) singleF(spec workload.Spec, cfg namedPF) *Future[sim.Result] {
	key := spec.Name + "/" + cfg.name
	r.mu.Lock()
	f, ok := r.cache[key]
	if !ok {
		f = Go(r.pool, func() sim.Result {
			hooks := r.newHooks()
			res := r.record(runSingle(r.P, spec, cfg.f, nil, hooks))
			r.storeSamples(key, hooks)
			return res
		})
		r.cache[key] = f
	}
	r.mu.Unlock()
	return f
}

// runSingleF schedules an uncached single-core run (mutated machines,
// one-off configurations) on the pool.
func (r *Runner) runSingleF(spec workload.Spec, factory pfFactory, mutate func(*sim.Options)) *Future[sim.Result] {
	return Go(r.pool, func() sim.Result {
		return r.record(runSingle(r.P, spec, factory, mutate, r.newHooks()))
	})
}

// runMixF schedules one multi-programmed mix on the pool.
func (r *Runner) runMixF(mix workload.MixSpec, factory pfFactory) *Future[sim.Result] {
	return Go(r.pool, func() sim.Result {
		return r.record(runMix(r.P, mix, factory, r.newHooks()))
	})
}

// runRateF schedules one N-copy server run on the pool.
func (r *Runner) runRateF(spec workload.Spec, cores int, factory pfFactory) *Future[sim.Result] {
	return Go(r.pool, func() sim.Result {
		return r.record(runRate(r.P, spec, cores, factory, r.newHooks()))
	})
}

// RunAll executes the given experiments, each on its own coordinator
// goroutine so their simulations interleave on the pool, and returns
// the tables in input order. The single-flight cache keeps shared
// baselines simulated exactly once even when figures race to them, so
// the output is byte-identical to a sequential run.
func RunAll(r *Runner, es []Experiment) []*Table {
	tables := make([]*Table, len(es))
	var wg sync.WaitGroup
	for i, e := range es {
		wg.Add(1)
		go func(i int, e Experiment) {
			defer wg.Done()
			tables[i] = e.Run(r)
			if p := r.pool.prog; p != nil {
				p.UnitDone()
			}
		}(i, e)
	}
	wg.Wait()
	return tables
}
