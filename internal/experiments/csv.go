package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV emits the table as RFC-4180 CSV: a comment-style header row
// with the id/title, then the column header and rows. Notes become
// trailing comment rows. Downstream plotting scripts consume this via
// `cmd/experiments -csv`.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"# " + t.ID, t.Title}); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	if err := cw.Write(t.Header); err != nil {
		return fmt.Errorf("experiments: csv columns: %w", err)
	}
	for i, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv row %d: %w", i, err)
		}
	}
	for _, n := range t.Notes {
		if err := cw.Write([]string{"# note", n}); err != nil {
			return fmt.Errorf("experiments: csv note: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Markdown renders the table as a GitHub-flavored markdown table
// (EXPERIMENTS.md embeds these).
func (t *Table) Markdown() string {
	out := "### " + t.ID + ": " + t.Title + "\n\n"
	row := func(cells []string) string {
		s := "|"
		for _, c := range cells {
			s += " " + c + " |"
		}
		return s + "\n"
	}
	out += row(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	out += row(sep)
	for _, r := range t.Rows {
		out += row(r)
	}
	for _, n := range t.Notes {
		out += "\n> " + n + "\n"
	}
	return out
}
