package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment pairs an id with its runner.
type Experiment struct {
	ID    string
	Short string
	Run   func(*Runner) *Table
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig01", "metadata reuse distribution (mcf)", (*Runner).Fig01},
		{"fig05", "Triage vs on-chip prefetchers, irregular SPEC", (*Runner).Fig05},
		{"fig06", "coverage and accuracy", (*Runner).Fig06},
		{"fig07", "gain vs LLC capacity loss breakdown", (*Runner).Fig07},
		{"fig08", "regular SPEC subset", (*Runner).Fig08},
		{"fig09", "metadata size x replacement policy", (*Runner).Fig09},
		{"fig10", "BO+Triage hybrid, single-core", (*Runner).Fig10},
		{"fig11", "vs off-chip temporal prefetchers: speedup + traffic", (*Runner).Fig11},
		{"fig12", "design space: speedup vs traffic", (*Runner).Fig12},
		{"fig13", "metadata energy: Triage vs MISB", (*Runner).Fig13},
		{"fig14", "CloudSuite server workloads, 4-core", (*Runner).Fig14},
		{"fig15", "static vs dynamic partitioning, shared LLC", (*Runner).Fig15},
		{"fig16", "4-core irregular mixes", (*Runner).Fig16},
		{"fig17", "MISB vs Triage across 2/4/8/16 cores", (*Runner).Fig17},
		{"fig18", "4-core mixed regular+irregular mixes", (*Runner).Fig18},
		{"fig19", "per-core metadata way allocation", (*Runner).Fig19},
		{"fig20", "prefetch degree sweep", (*Runner).Fig20},
		{"sens-epoch", "partition epoch-length sensitivity", (*Runner).SensEpoch},
		{"sens-latency", "extra LLC latency sensitivity", (*Runner).SensLatency},
		{"ext-zoo", "extended prefetcher zoo (paper §2 lineage)", (*Runner).ExtZoo},
		{"ext-zoo-traffic", "metadata organizations: traffic", (*Runner).ExtZooTraffic},
		{"ext-utility", "future work: utility-aware partitioning", (*Runner).ExtUtility},
		{"ext-ladder", "extension: time-shared OPTgen size ladder", (*Runner).ExtLadder},
		{"ext-llc-policy", "LLC data replacement ablation", (*Runner).ExtLLCPolicy},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists experiment ids, sorted.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

// RunOne executes one experiment, converting a panic in its
// coordinator (e.g. a failed cell collected through Wait, or a broken
// figure function) into an error table so sibling experiments keep
// running.
func RunOne(r *Runner, e Experiment) (t *Table) {
	defer func() {
		if rec := recover(); rec != nil {
			t = errorTable(e, asRunError(rec))
		}
	}()
	return e.Run(r)
}

// RunAndPrint executes the experiment and writes its table to w.
func RunAndPrint(r *Runner, e Experiment, w io.Writer) {
	fmt.Fprintf(w, "running %s (%s)...\n", e.ID, e.Short)
	t := RunOne(r, e)
	t.Fprint(w)
}
