package experiments

import (
	"bytes"
	"testing"

	"repro/internal/config"
	"repro/internal/prefetch"
	"repro/internal/prefetch/hybrid"
	"repro/internal/telemetry"
)

func TestBuildPrefetcherKnownNames(t *testing.T) {
	m := config.Default(1)
	names := []string{
		"bo", "sms", "stms", "domino", "misb", "isb", "markov", "ghb",
		"nextline", "triage-512k", "triage-1m", "triage-dyn",
		"triage-dynutil", "triage-unlimited",
	}
	for _, n := range names {
		p, err := BuildPrefetcher(n, m, 1)
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		if p == nil {
			t.Errorf("%s: nil prefetcher", n)
		}
	}
}

func TestBuildPrefetcherNone(t *testing.T) {
	m := config.Default(1)
	for _, n := range []string{"none", "stride-only"} {
		p, err := BuildPrefetcher(n, m, 1)
		if err != nil || p != nil {
			t.Errorf("%s: p=%v err=%v, want nil,nil", n, p, err)
		}
	}
}

func TestBuildPrefetcherUnknown(t *testing.T) {
	m := config.Default(1)
	if _, err := BuildPrefetcher("bogus", m, 1); err == nil {
		t.Error("unknown prefetcher accepted")
	}
}

func TestBuildPrefetcherHybrid(t *testing.T) {
	m := config.Default(1)
	p, err := BuildPrefetcher("triage+bo", m, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := p.(*hybrid.Prefetcher)
	if !ok {
		t.Fatalf("got %T, want hybrid", p)
	}
	if len(h.Parts()) != 2 {
		t.Errorf("hybrid has %d parts", len(h.Parts()))
	}
	if _, err := BuildPrefetcher("bo+none", m, 1); err == nil {
		t.Error("hybrid with non-composable part accepted")
	}
}

func TestBuildPrefetcherDegree(t *testing.T) {
	m := config.Default(1)
	p, err := BuildPrefetcher("bo", m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(prefetch.DegreeSetter); !ok {
		t.Error("bo does not expose DegreeSetter")
	}
}

func TestRunSpecNormalizeAndKey(t *testing.T) {
	a := RunSpec{Bench: "mcf", Warmup: 1, Measure: 2}
	a.Normalize()
	if a.PF != "none" || a.Cores != 1 || a.Degree != 1 {
		t.Fatalf("normalize left %+v", a)
	}
	b := RunSpec{Bench: "mcf", PF: "none", Cores: 1, Warmup: 1, Measure: 2, Degree: 1}
	if a.Key() != b.Key() {
		t.Errorf("equivalent specs key differently: %q vs %q", a.Key(), b.Key())
	}
	// Sampling is part of the identity (the stored series differs)...
	c := b
	c.SampleEvery = 1000
	if c.Key() == b.Key() {
		t.Error("SampleEvery did not change the key")
	}
	// ...but the invariant-check debug knob is not.
	d := b
	d.CheckEvery = 1000
	if d.Key() != b.Key() {
		t.Error("CheckEvery changed the key")
	}
}

func TestRunSpecValidate(t *testing.T) {
	for _, bad := range []RunSpec{
		{Bench: "bogus", PF: "none", Cores: 1, Measure: 1, Degree: 1},
		{Bench: "mcf", PF: "bogus", Cores: 1, Measure: 1, Degree: 1},
		{Bench: "mcf", PF: "none", Cores: 1, Measure: 0, Degree: 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("spec %+v validated", bad)
		}
	}
}

// TestRunSpecDeterministic pins the service's core guarantee at the
// spec level: the same spec runs to an identical encoded result, and
// the JSON encoding round-trips byte-exactly.
func TestRunSpecDeterministic(t *testing.T) {
	rs := RunSpec{Bench: "mcf", PF: "nextline", Cores: 1, Warmup: 20_000, Measure: 50_000, Seed: 42, Degree: 1}
	r1, err := rs.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := rs.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := EncodeResult(r1), EncodeResult(r2)
	if !bytes.Equal(b1, b2) {
		t.Error("same spec produced different encoded results")
	}
}

func TestRunSpecSamplerHooks(t *testing.T) {
	rs := RunSpec{Bench: "mcf", PF: "none", Cores: 1, Warmup: 0, Measure: 40_000, Seed: 42, Degree: 1, SampleEvery: 10_000}
	hooks := &telemetry.Hooks{Sampler: telemetry.NewSampler(rs.SampleEvery)}
	if _, err := rs.Run(hooks); err != nil {
		t.Fatal(err)
	}
	if len(hooks.Sampler.Samples()) == 0 {
		t.Error("sampler recorded no samples")
	}
}
