package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/workload"
)

func sampleTable() *Table {
	t := &Table{
		ID:     "figXX",
		Title:  "sample",
		Header: []string{"benchmark", "speedup"},
	}
	t.AddRow("mcf", "1.234")
	t.AddRow("omnetpp", "1.100")
	t.Note("a note with %d", 42)
	return t
}

func TestTableFprintAlignment(t *testing.T) {
	var buf bytes.Buffer
	sampleTable().Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "figXX") || !strings.Contains(out, "sample") {
		t.Errorf("missing title: %q", out)
	}
	if !strings.Contains(out, "mcf") || !strings.Contains(out, "1.234") {
		t.Errorf("missing row data: %q", out)
	}
	if !strings.Contains(out, "a note with 42") {
		t.Errorf("missing formatted note: %q", out)
	}
	// Columns align: every data line has the speedup at the same offset.
	lines := strings.Split(out, "\n")
	var dataCols []int
	for _, ln := range lines {
		if strings.Contains(ln, "1.234") {
			dataCols = append(dataCols, strings.Index(ln, "1.234"))
		}
		if strings.Contains(ln, "1.100") {
			dataCols = append(dataCols, strings.Index(ln, "1.100"))
		}
	}
	if len(dataCols) != 2 || dataCols[0] != dataCols[1] {
		t.Errorf("columns not aligned: %v", dataCols)
	}
}

func TestTableCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# figXX", "benchmark,speedup", "mcf,1.234", "# note"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	md := sampleTable().Markdown()
	for _, want := range []string{"### figXX", "| benchmark | speedup |", "| --- | --- |", "| mcf | 1.234 |", "> a note"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean(nil); g != 1 {
		t.Errorf("geomean(nil) = %g, want 1", g)
	}
	if g := geomean([]float64{2, 8}); g != 4 {
		t.Errorf("geomean(2,8) = %g, want 4", g)
	}
	if g := geomean([]float64{1, 0}); g != 0 {
		t.Errorf("geomean with zero = %g, want 0", g)
	}
}

func TestMean(t *testing.T) {
	if m := mean(nil); m != 0 {
		t.Errorf("mean(nil) = %g", m)
	}
	if m := mean([]float64{1, 3}); m != 2 {
		t.Errorf("mean(1,3) = %g, want 2", m)
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Short == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	// Every figure of the paper's evaluation section is present.
	for _, want := range []string{
		"fig01", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "fig20", "sens-epoch", "sens-latency",
	} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestByIDAndIDs(t *testing.T) {
	if _, ok := ByID("fig05"); !ok {
		t.Error("fig05 not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("found nonexistent experiment")
	}
	if len(IDs()) != len(All()) {
		t.Error("IDs length mismatch")
	}
}

// tinyParams shrink runs to smoke-test scale.
func tinyParams() Params {
	return Params{
		Warmup:       60_000,
		Measure:      40_000,
		MultiWarmup:  30_000,
		MultiMeasure: 20_000,
		Mixes:        2,
		Seed:         7,
	}
}

// TestFiguresSmoke runs EVERY registered experiment end-to-end at tiny
// scale, checking table structure rather than values — the integration
// test that keeps all 23 artifacts runnable.
func TestFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	r := NewRunner(tinyParams())
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab := e.Run(r)
			if tab.ID != e.ID {
				t.Errorf("table id %q, want %q", tab.ID, e.ID)
			}
			if len(tab.Header) == 0 || len(tab.Rows) == 0 {
				t.Fatalf("empty table")
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Errorf("row width %d != header width %d (%v)", len(row), len(tab.Header), row)
				}
			}
		})
	}
}

// TestMultiCoreFigureSmoke runs one multi-core figure at tiny scale.
func TestMultiCoreFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	r := NewRunner(tinyParams())
	tab := r.Fig16()
	if len(tab.Rows) != tinyParams().Mixes+1 { // mixes + geomean
		t.Errorf("fig16 rows = %d, want %d", len(tab.Rows), tinyParams().Mixes+1)
	}
}

// TestRunnerCaching verifies that repeated single() calls reuse results.
func TestRunnerCaching(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	r := NewRunner(tinyParams())
	spec := irregularSpec(t)
	a := r.single(spec, cfgNone)
	before := len(r.cache)
	b := r.single(spec, cfgNone)
	if len(r.cache) != before {
		t.Error("second single() call grew the cache")
	}
	if a.IPC() != b.IPC() {
		t.Error("cached result differs")
	}
}

func irregularSpec(t *testing.T) workload.Spec {
	t.Helper()
	s, ok := workload.ByName("xalancbmk")
	if !ok {
		t.Fatal("xalancbmk missing")
	}
	return s
}
