package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// writeV2Store builds a legacy (pre-CRC) store file by hand: plain
// JSONL records after a v2 header — the on-disk format PR 3/4 wrote.
func writeV2Store(t *testing.T, fsys vfs.FS, dir, fp string, recs []checkpointRecord) {
	t.Helper()
	var buf bytes.Buffer
	hdr, err := json.Marshal(checkpointHeader{V: checkpointVersionV2, FP: fp})
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(hdr)
	buf.WriteByte('\n')
	for _, rec := range recs {
		rec.V = checkpointVersionV2
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFileAtomic(fsys, filepath.Join(dir, checkpointFile), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointV2ReadCompat: a store written in the legacy v2 format
// opens, serves its records, and is upgraded in place to v3 framing —
// after which every line (header aside) carries a CRC.
func TestCheckpointV2ReadCompat(t *testing.T) {
	dir := t.TempDir()
	res := sim.Result{PrefetchesIssued: 11}
	writeV2Store(t, vfs.OS{}, dir, testFP(), []checkpointRecord{
		{Key: "a/b", Result: res, Samples: []byte("{\"s\":1}\n")},
		{Key: "fig/x", Blob: []byte(`{"table":1}`), IsBlob: true},
	})
	ck, err := OpenCheckpoint(dir, testFP())
	if err != nil {
		t.Fatalf("v2 store refused: %v", err)
	}
	got, samples, ok := ck.Get("a/b")
	if !ok || got.PrefetchesIssued != 11 || string(samples) != "{\"s\":1}\n" {
		t.Errorf("v2 run record = (%+v, %q, %t), want the persisted values", got, samples, ok)
	}
	if blob, ok := ck.GetBlob("fig/x"); !ok || string(blob) != `{"table":1}` {
		t.Errorf("v2 blob record = (%q, %t)", blob, ok)
	}
	if err := ck.Put("new/key", sim.Result{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	// The upgraded file must be pure v3: header + CRC-framed lines.
	data, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	if len(lines) != 4 {
		t.Fatalf("upgraded store has %d lines, want header + 3 records", len(lines))
	}
	for i, line := range lines[1:] {
		if _, err := unframeRecord(line); err != nil {
			t.Errorf("upgraded record %d not CRC-framed: %v", i, err)
		}
	}
	ck2, err := OpenCheckpoint(dir, testFP())
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Len() != 3 {
		t.Errorf("reopened upgraded store holds %d records, want 3", ck2.Len())
	}
}

// TestCheckpointMidFileCorruption flips bytes inside an early record
// and verifies the corruption is detected (CRC), the record is
// quarantined rather than served, and every healthy record — before
// and after the corrupt one — survives.
func TestCheckpointMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	ck, err := OpenCheckpoint(dir, testFP())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"a/1", "a/2", "a/3"} {
		if err := ck.Put(key, sim.Result{PrefetchesIssued: 5}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, checkpointFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the middle record's payload (line 2 after the header)
	// without touching its newline.
	lines := bytes.SplitAfter(data, []byte("\n"))
	mid := lines[2]
	copy(mid[20:], []byte("XXXX"))
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenCheckpoint(dir, testFP())
	if err != nil {
		t.Fatalf("mid-file corruption rejected the whole store: %v", err)
	}
	if ck2.Quarantined() != 1 {
		t.Errorf("quarantined %d records, want 1", ck2.Quarantined())
	}
	if ck2.Has("a/2") {
		t.Error("corrupt record a/2 served anyway")
	}
	for _, key := range []string{"a/1", "a/3"} {
		if !ck2.Has(key) {
			t.Errorf("healthy record %s lost to a neighbour's corruption", key)
		}
	}
	if err := ck2.Close(); err != nil {
		t.Fatal(err)
	}

	// The quarantine file holds the corrupt line; the compacted store
	// reopens clean.
	q, err := os.ReadFile(filepath.Join(dir, quarantineFile))
	if err != nil || !bytes.Contains(q, []byte("XXXX")) {
		t.Errorf("quarantine file missing the corrupt line (err %v)", err)
	}
	ck3, err := OpenCheckpoint(dir, testFP())
	if err != nil {
		t.Fatal(err)
	}
	defer ck3.Close()
	if ck3.Quarantined() != 0 {
		t.Errorf("compacted store still quarantines %d records", ck3.Quarantined())
	}
	if ck3.Len() != 2 {
		t.Errorf("compacted store holds %d records, want 2", ck3.Len())
	}
}

// TestCheckpointCrashBetweenWriteAndSync is the kill -9 window the
// ISSUE names: a record written but not yet fsynced when the process
// dies must not corrupt the store — on reopen the store is openable,
// fully-synced records are intact, and the un-synced tail is
// truncated/quarantined, never half-served.
func TestCheckpointCrashBetweenWriteAndSync(t *testing.T) {
	for seed := int64(0); seed < 32; seed++ {
		mem := vfs.NewMem(seed)
		// Sync failures leave the acknowledged prefix durable but the
		// failing record merely written: exactly the write/fsync window.
		faulty := vfs.NewFaulty(mem, vfs.Plan{})
		ck, err := OpenCheckpointFS(faulty, "store", testFP())
		if err != nil {
			t.Fatal(err)
		}
		if err := ck.Put("good/1", sim.Result{PrefetchesIssued: 1}, nil); err != nil {
			t.Fatal(err)
		}
		faulty.SetPlan(vfs.Plan{Seed: seed, PSync: 1})
		if err := ck.Put("lost/2", sim.Result{PrefetchesIssued: 2}, nil); err == nil {
			t.Fatal("sync fault not delivered")
		}
		// kill -9: the process is gone, the disk keeps only what was
		// synced plus a random prefix of the unsynced record.
		mem.Crash()

		faulty.Heal()
		ck2, err := OpenCheckpointFS(faulty, "store", testFP())
		if err != nil {
			t.Fatalf("seed %d: store unopenable after crash: %v", seed, err)
		}
		if !ck2.Has("good/1") {
			t.Fatalf("seed %d: synced record lost", seed)
		}
		// The un-synced record either survived whole (its bytes all
		// reached disk before the crash) or was dropped; a torn prefix
		// must never be served as a record.
		if ck2.Has("lost/2") {
			res, _, _ := ck2.Get("lost/2")
			if res.PrefetchesIssued != 2 {
				t.Fatalf("seed %d: torn record served with wrong content", seed)
			}
		}
		// And the store must accept appends again.
		if err := ck2.Put("new/3", sim.Result{}, nil); err != nil {
			t.Fatalf("seed %d: append after crash recovery: %v", seed, err)
		}
		if err := ck2.Close(); err != nil {
			t.Fatalf("seed %d: close: %v", seed, err)
		}
	}
}

// TestCheckpointPutReportsAndLatchesErrors: a failed Put surfaces the
// error to the caller (degraded mode), latches it for Close, and
// ClearErr forgives it after recovery.
func TestCheckpointPutReportsAndLatchesErrors(t *testing.T) {
	faulty := vfs.NewFaulty(vfs.NewMem(1), vfs.Plan{})
	ck, err := OpenCheckpointFS(faulty, "store", testFP())
	if err != nil {
		t.Fatal(err)
	}
	faulty.SetPlan(vfs.Plan{Seed: 9, PWrite: 1})
	if err := ck.Put("k", sim.Result{}, nil); !vfs.IsInjected(err) {
		t.Fatalf("Put returned %v, want the injected fault", err)
	}
	if ck.Has("k") {
		t.Error("failed Put left the record visible in memory")
	}
	if ck.Err() == nil {
		t.Error("write error not latched")
	}
	faulty.Heal()
	if err := ck.Put("k", sim.Result{}, nil); err != nil {
		t.Fatalf("Put after heal: %v", err)
	}
	ck.ClearErr()
	if err := ck.Close(); err != nil {
		t.Fatalf("Close after ClearErr: %v", err)
	}
}
