package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/workload"
)

// TestSingleFlightSharedBaselines runs two figures that share every
// cached simulation (Fig05 and Fig06 use the same suite x config grid
// plus the no-prefetch baselines) concurrently on a wide pool. The
// single-flight cache must simulate each distinct configuration exactly
// once, and under -race this doubles as the regression test for the
// Runner cache data race.
func TestSingleFlightSharedBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	r := NewRunnerPool(tinyParams(), NewPool(8))
	e05, _ := ByID("fig05")
	e06, _ := ByID("fig06")
	RunAll(r, []Experiment{e05, e06})

	// Fig05 and Fig06 both run suite x {BO, SMS, T512, T1M, TDyn} plus
	// the baseline: 6 distinct runs per benchmark, shared between them.
	want := uint64(len(workload.IrregularSuite()) * 6)
	if got := r.Runs(); got != want {
		t.Errorf("executed %d simulations, want %d (baselines shared via single-flight)", got, want)
	}
	if got := uint64(len(r.cache)); got != want {
		t.Errorf("cache holds %d entries, want %d", got, want)
	}
	if r.SimulatedInstructions() == 0 {
		t.Error("no simulated instructions recorded")
	}
}

// csvFor runs the given experiments under params p on a pool of the
// given width with telemetry sampling on, returning the concatenated
// CSV output and the per-run sampled JSONL series.
func csvFor(t *testing.T, p Params, workers int, ids []string) ([]byte, map[string][]byte) {
	t.Helper()
	p.SampleEvery = 10_000
	r := NewRunnerPool(p, NewPool(workers))
	var es []Experiment
	for _, id := range ids {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		es = append(es, e)
	}
	var buf bytes.Buffer
	for _, tab := range RunAll(r, es) {
		if err := tab.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes(), r.SampleSeries()
}

// TestParallelDeterminism checks the acceptance criterion directly: a
// single-core figure and a multi-core mix figure produce byte-identical
// CSVs on one worker and on eight, and every cached run's sampled
// telemetry time series is byte-identical too.
//
// It also pins two properties of the batched step loop:
//
//   - Telemetry interval boundaries are exact. Every sampled series
//     must advance by exactly SampleEvery summed instructions per
//     sample — a batch overshooting a sample point would show up as a
//     shifted grid.
//   - Invariant-checker polling points don't perturb results. A run
//     with CheckEvery set to an awkward non-divisor of both the batch
//     sizes and the sample interval must reproduce the unchecked run's
//     CSVs and series byte for byte (and would panic outright if
//     batching left a structure inconsistent at a polling point).
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	ids := []string{"fig05", "fig16"}
	seq, seqSamples := csvFor(t, tinyParams(), 1, ids)
	par, parSamples := csvFor(t, tinyParams(), 8, ids)
	if !bytes.Equal(seq, par) {
		t.Errorf("-j 8 output differs from -j 1:\n--- j1 ---\n%s\n--- j8 ---\n%s", seq, par)
	}
	if len(seqSamples) == 0 {
		t.Fatal("no sampled series recorded with SampleEvery set")
	}
	if len(parSamples) != len(seqSamples) {
		t.Fatalf("sample series count differs: j1=%d j8=%d", len(seqSamples), len(parSamples))
	}
	for key, want := range seqSamples {
		got, ok := parSamples[key]
		if !ok {
			t.Errorf("series %q missing on -j 8", key)
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("series %q differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", key, want, got)
		}
		checkSampleGrid(t, key, want, 10_000)
	}

	checked := tinyParams()
	checked.CheckEvery = 7_001
	chk, chkSamples := csvFor(t, checked, 8, ids)
	if !bytes.Equal(seq, chk) {
		t.Errorf("CheckEvery=%d output differs from unchecked run:\n--- plain ---\n%s\n--- checked ---\n%s",
			checked.CheckEvery, seq, chk)
	}
	for key, want := range seqSamples {
		if got := chkSamples[key]; !bytes.Equal(want, got) {
			t.Errorf("series %q differs with CheckEvery=%d:\n--- plain ---\n%s\n--- checked ---\n%s",
				key, checked.CheckEvery, want, got)
		}
	}
}

// checkSampleGrid asserts that a sampled JSONL series advances by
// exactly `every` summed instructions per sample with consecutive
// interval indices: the batched step loop must stop precisely on
// telemetry boundaries.
func checkSampleGrid(t *testing.T, key string, series []byte, every uint64) {
	t.Helper()
	var prev uint64
	for i, line := range bytes.Split(bytes.TrimSpace(series), []byte("\n")) {
		var s struct {
			Interval     int    `json:"interval"`
			Instructions uint64 `json:"instructions"`
		}
		if err := json.Unmarshal(line, &s); err != nil {
			t.Fatalf("series %q sample %d: %v", key, i, err)
		}
		if s.Interval != i {
			t.Fatalf("series %q sample %d has interval index %d", key, i, s.Interval)
		}
		if i > 0 && s.Instructions != prev+every {
			t.Fatalf("series %q sample %d: instructions %d, want %d (batching shifted a sample boundary)",
				key, i, s.Instructions, prev+every)
		}
		prev = s.Instructions
	}
}
