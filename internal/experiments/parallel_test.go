package experiments

import (
	"bytes"
	"testing"

	"repro/internal/workload"
)

// TestSingleFlightSharedBaselines runs two figures that share every
// cached simulation (Fig05 and Fig06 use the same suite x config grid
// plus the no-prefetch baselines) concurrently on a wide pool. The
// single-flight cache must simulate each distinct configuration exactly
// once, and under -race this doubles as the regression test for the
// Runner cache data race.
func TestSingleFlightSharedBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	r := NewRunnerPool(tinyParams(), NewPool(8))
	e05, _ := ByID("fig05")
	e06, _ := ByID("fig06")
	RunAll(r, []Experiment{e05, e06})

	// Fig05 and Fig06 both run suite x {BO, SMS, T512, T1M, TDyn} plus
	// the baseline: 6 distinct runs per benchmark, shared between them.
	want := uint64(len(workload.IrregularSuite()) * 6)
	if got := r.Runs(); got != want {
		t.Errorf("executed %d simulations, want %d (baselines shared via single-flight)", got, want)
	}
	if got := uint64(len(r.cache)); got != want {
		t.Errorf("cache holds %d entries, want %d", got, want)
	}
	if r.SimulatedInstructions() == 0 {
		t.Error("no simulated instructions recorded")
	}
}

// csvFor runs the given experiments on a pool of the given width and
// returns their concatenated CSV output.
func csvFor(t *testing.T, workers int, ids []string) []byte {
	t.Helper()
	r := NewRunnerPool(tinyParams(), NewPool(workers))
	var es []Experiment
	for _, id := range ids {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		es = append(es, e)
	}
	var buf bytes.Buffer
	for _, tab := range RunAll(r, es) {
		if err := tab.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestParallelDeterminism checks the acceptance criterion directly: a
// single-core figure and a multi-core mix figure produce byte-identical
// CSVs on one worker and on eight.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	ids := []string{"fig05", "fig16"}
	seq := csvFor(t, 1, ids)
	par := csvFor(t, 8, ids)
	if !bytes.Equal(seq, par) {
		t.Errorf("-j 8 output differs from -j 1:\n--- j1 ---\n%s\n--- j8 ---\n%s", seq, par)
	}
}
