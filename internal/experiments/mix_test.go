package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mem"
)

func TestRunSpecMixNormalizeAndKey(t *testing.T) {
	hexID := strings.Repeat("cd", 32)
	s := RunSpec{Mix: []string{"mcf", hexID}, Warmup: 1, Measure: 2}
	s.Normalize()
	if s.Cores != 2 {
		t.Errorf("Cores = %d, want len(Mix) = 2", s.Cores)
	}
	if s.Mix[1] != "sha256:"+hexID {
		t.Errorf("bare-hex mix entry not canonicalized: %q", s.Mix[1])
	}
	if want := "mcf+trace-" + hexID[:12]; s.Bench != want {
		t.Errorf("bench label = %q, want %q", s.Bench, want)
	}

	// The identity is the per-core composition, independent of the
	// display label and of how the trace entry was spelled.
	a := RunSpec{Mix: []string{"mcf", hexID}, Warmup: 1, Measure: 2}
	a.Normalize()
	b := RunSpec{Mix: []string{"mcf", "sha256:" + hexID}, Bench: "my-mix", Warmup: 1, Measure: 2}
	b.Normalize()
	if a.Key() != b.Key() {
		t.Errorf("equivalent mixes keyed differently: %q vs %q", a.Key(), b.Key())
	}
	if !strings.HasPrefix(a.Key(), "mcf+sha256:"+hexID+"/") {
		t.Errorf("mix key does not join the composition: %q", a.Key())
	}

	// Order matters: [A,B] is a different machine than [B,A].
	r := RunSpec{Mix: []string{"sha256:" + hexID, "mcf"}, Warmup: 1, Measure: 2}
	r.Normalize()
	if r.Key() == a.Key() {
		t.Error("reordered mix keyed the same")
	}

	// A homogeneous mix and the plain rate-mode spec are distinct keys
	// (they simulate identically, but the spec spelling differs — the
	// byte-identity is pinned by TestRunSpecMixMatchesRateMode).
	plain := RunSpec{Bench: "mcf", PF: "none", Cores: 2, Warmup: 1, Measure: 2, Degree: 1}
	mix2 := RunSpec{Mix: []string{"mcf", "mcf"}, PF: "none", Warmup: 1, Measure: 2, Degree: 1}
	mix2.Normalize()
	if plain.Key() == mix2.Key() {
		t.Error("homogeneous mix keyed like the plain spec")
	}
}

func TestRunSpecMixValidate(t *testing.T) {
	c := withTestCorpus(t)

	both := RunSpec{Mix: []string{"mcf"}, Trace: "sha256:" + strings.Repeat("0", 64), Measure: 1}
	both.Normalize()
	if err := both.Validate(); err == nil || !strings.Contains(err.Error(), "both") {
		t.Errorf("trace+mix spec validated: %v", err)
	}

	bad := RunSpec{Mix: []string{"mcf", "no-such-bench"}, Measure: 1}
	bad.Normalize()
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "mix core 1") {
		t.Errorf("unknown benchmark in mix validated: %v", err)
	}

	missing := RunSpec{Mix: []string{"sha256:" + strings.Repeat("0", 64)}, Measure: 1}
	missing.Normalize()
	if err := missing.Validate(); err == nil {
		t.Error("mix naming an absent corpus trace validated")
	}

	id := ingest(t, c, "lbm", 3, 0, 16)
	ok := RunSpec{Mix: []string{"mcf", id}, Measure: 1}
	ok.Normalize()
	if err := ok.Validate(); err != nil {
		t.Errorf("well-formed mix failed validation: %v", err)
	}
}

// TestRunSpecMixMatchesRateMode pins the compatibility contract from
// the spec docs: a mix of N copies of one benchmark is byte-identical
// to the plain Cores=N rate-mode spec (same per-core seed offsets,
// same disjoint address bases).
func TestRunSpecMixMatchesRateMode(t *testing.T) {
	plain := RunSpec{Bench: "mcf", PF: "triage-dyn", Cores: 2, Warmup: 5_000, Measure: 20_000, Seed: 7, Degree: 1}
	mix := RunSpec{Mix: []string{"mcf", "mcf"}, PF: "triage-dyn", Warmup: 5_000, Measure: 20_000, Seed: 7, Degree: 1}
	rp, err := plain.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := mix.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	bp, bm := EncodeResult(rp), EncodeResult(rm)
	if !bytes.Equal(bp, bm) {
		t.Errorf("homogeneous mix diverged from rate mode:\nplain: %s\nmix:   %s", bp, bm)
	}
}

// TestRunSpecMixTraceEntry runs a heterogeneous mix — one captured
// trace, one generator — end to end and checks determinism, and that
// the trace core's capture base does not leak: replay entries always
// sit at the uniform (core+1)<<40 base.
func TestRunSpecMixTraceEntry(t *testing.T) {
	c := withTestCorpus(t)
	id := ingest(t, c, "lbm", 11, mem.Addr(1)<<40, 100_000)

	spec := RunSpec{Mix: []string{id, "mcf"}, PF: "triage-dyn", Warmup: 5_000, Measure: 20_000, Seed: 7, Degree: 1}
	r1, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := EncodeResult(r1), EncodeResult(r2)
	if !bytes.Equal(b1, b2) {
		t.Error("trace-bearing mix is not deterministic")
	}
	if r1.SimulatedInstructions == 0 {
		t.Error("mix run retired no instructions")
	}
}
