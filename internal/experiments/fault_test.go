package experiments

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/prefetch"
	"repro/internal/sim"
)

// TestFutureResultAfterPanic is the regression test for the Wait
// deadlock: a panic inside the pooled function must resolve the Future
// with a *RunError (stack attached) instead of leaving waiters blocked
// on a channel that never closes.
func TestFutureResultAfterPanic(t *testing.T) {
	f := Go(NewPool(2), func() sim.Result { panic("kaboom") })
	_, err := f.Result()
	if err == nil {
		t.Fatal("panicking job resolved without error")
	}
	if err.Reason != "panic" {
		t.Errorf("reason = %q, want panic", err.Reason)
	}
	if err.Err == nil || !strings.Contains(err.Err.Error(), "kaboom") {
		t.Errorf("wrapped error = %v, want the panic value", err.Err)
	}
	if len(err.Stack) == 0 {
		t.Error("no stack captured at the panic site")
	}
	// Wait on the same Future re-panics with the identical error rather
	// than hanging or returning a zero value.
	func() {
		defer func() {
			rec := recover()
			if rec == nil {
				t.Fatal("Wait returned normally after a failed run")
			}
			if rec.(*RunError) != err {
				t.Error("Wait re-panicked with a different error value")
			}
		}()
		f.Wait()
	}()
}

// TestPanicIsolationProducesErrorTable injects a panicking prefetcher
// factory into one experiment and runs it alongside a healthy sibling:
// the failed experiment must degrade into an annotated error table
// (stack included) while the sibling completes normally.
func TestPanicIsolationProducesErrorTable(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	spec := irregularSpec(t)
	boom := Experiment{
		ID:    "boom",
		Short: "injected panicking workload",
		Run: func(r *Runner) *Table {
			f := r.runSingleF(spec, func(config.Machine) prefetch.Prefetcher {
				panic("injected workload panic")
			}, nil)
			f.Wait()
			return &Table{ID: "boom"}
		},
	}
	healthy, _ := ByID("fig01")

	r := NewRunnerPool(tinyParams(), NewPool(4))
	tables := RunAll(r, []Experiment{boom, healthy})

	bad := tables[0]
	if !bad.Failed {
		t.Fatal("panicking experiment's table not marked failed")
	}
	if !strings.Contains(bad.Title, "FAILED") {
		t.Errorf("error table title %q lacks FAILED marker", bad.Title)
	}
	var rows strings.Builder
	for _, row := range bad.Rows {
		rows.WriteString(strings.Join(row, " "))
	}
	if !strings.Contains(rows.String(), "injected workload panic") {
		t.Errorf("error row omits the panic message:\n%s", rows.String())
	}
	notes := strings.Join(bad.Notes, "\n")
	if !strings.Contains(notes, "fault_test.go") {
		t.Errorf("error table notes omit the panic-site stack frame:\n%s", notes)
	}

	good := tables[1]
	if good.Failed {
		t.Error("healthy sibling marked failed")
	}
	if len(good.Rows) == 0 {
		t.Error("healthy sibling produced no rows")
	}
	if !AnyFailed(tables) {
		t.Error("AnyFailed missed the failed table")
	}
}

// TestRetryTransientFault injects one transient failure through the
// fault hook and verifies the bounded retry recovers: the run succeeds
// on the second attempt and counts as a single simulation.
func TestRetryTransientFault(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	var calls atomic.Int32
	p := tinyParams()
	p.Retries = 1
	p.FaultHook = func(key string, attempt int) error {
		calls.Add(1)
		if attempt == 1 {
			return errors.New("injected transient fault")
		}
		return nil
	}
	r := NewRunnerPool(p, NewPool(2))
	res, err := r.singleF(irregularSpec(t), cfgNone).Result()
	if err != nil {
		t.Fatalf("transient fault not retried: %v", err)
	}
	if res.IPC() <= 0 {
		t.Error("retried run produced no result")
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("fault hook called %d times, want 2 (fail, then succeed)", got)
	}
	if got := r.Runs(); got != 1 {
		t.Errorf("Runs() = %d, want 1 (the fault fires before the simulation)", got)
	}
}

// TestRetryBudgetExhausted verifies a persistently failing cell gives
// up after Retries extra attempts with the attempt count reported.
func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int32
	p := tinyParams()
	p.Retries = 2
	p.FaultHook = func(key string, attempt int) error {
		calls.Add(1)
		return errors.New("always failing")
	}
	r := NewRunnerPool(p, NewPool(1))
	_, err := r.singleF(irregularSpec(t), cfgNone).Result()
	if err == nil {
		t.Fatal("persistently failing cell reported success")
	}
	if err.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3 (1 initial + 2 retries)", err.Attempts)
	}
	if !err.Transient {
		t.Error("fault-injected failure not marked transient")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("fault hook called %d times, want 3", got)
	}
	if r.Runs() != 0 {
		t.Errorf("Runs() = %d, want 0 (no attempt reached the simulator)", r.Runs())
	}
}

// TestDeadlineFailsRun arms the wall-clock watchdog against a run far
// too large to finish in time and verifies it aborts with a structured
// error instead of running for minutes.
func TestDeadlineFailsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	p := tinyParams()
	p.Measure = 2_000_000_000 // minutes of work; the watchdog must cut it off
	p.Deadline = 50 * time.Millisecond
	r := NewRunnerPool(p, NewPool(1))
	start := time.Now()
	_, err := r.singleF(irregularSpec(t), cfgNone).Result()
	if err == nil {
		t.Fatal("2G-instruction run beat a 50ms deadline")
	}
	if err.Reason != "aborted" {
		t.Errorf("reason = %q, want aborted", err.Reason)
	}
	var ab *sim.Aborted
	if !errors.As(err, &ab) {
		t.Fatalf("error %v does not unwrap to *sim.Aborted", err)
	}
	if !strings.Contains(ab.Reason, "deadline") {
		t.Errorf("abort reason %q does not mention the deadline", ab.Reason)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("abort took %s; watchdog did not cancel promptly", elapsed)
	}
}
