package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workload"
)

// withTestCorpus points the process-wide trace corpus at a fresh temp
// directory for the duration of one test, restoring the previous
// corpus (possibly nil) afterwards.
func withTestCorpus(t *testing.T) *trace.Corpus {
	t.Helper()
	traceCorpusMu.Lock()
	prev := traceCorpus
	traceCorpusMu.Unlock()
	t.Cleanup(func() {
		traceCorpusMu.Lock()
		traceCorpus = prev
		traceCorpusMu.Unlock()
	})
	if err := SetTraceCorpus(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	return TraceCorpus()
}

// ingest materializes the first n records of a benchmark generator
// (seeded, based) into the corpus and returns the canonical trace id.
func ingest(t *testing.T, c *trace.Corpus, bench string, seed uint64, base mem.Addr, n int) string {
	t.Helper()
	spec, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %s", bench)
	}
	cw, err := c.Create()
	if err != nil {
		t.Fatal(err)
	}
	r := spec.New(seed, base)
	for i := 0; i < n; i++ {
		rec, ok := r.Next()
		if !ok {
			t.Fatalf("generator %s ended after %d records", bench, i)
		}
		if err := cw.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	id, err := cw.Commit()
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestRunSpecTraceNormalizeAndKey(t *testing.T) {
	hexID := strings.Repeat("ab", 32)
	a := RunSpec{Trace: hexID, Warmup: 1, Measure: 2}
	a.Normalize()
	if a.Trace != "sha256:"+hexID {
		t.Errorf("bare hex not canonicalized: %q", a.Trace)
	}
	if a.Bench != "trace-"+hexID[:12] {
		t.Errorf("bench label not defaulted from hash: %q", a.Bench)
	}
	// The display label must not leak into the identity: two
	// submissions of the same trace dedup onto one result.
	b := RunSpec{Trace: "sha256:" + hexID, Bench: "my-label", PF: "none", Cores: 1, Warmup: 1, Measure: 2, Degree: 1}
	b.Normalize()
	if a.Key() != b.Key() {
		t.Errorf("display label changed the key: %q vs %q", a.Key(), b.Key())
	}
	// ...and a trace spec must not collide with a generator spec.
	g := RunSpec{Bench: "mcf", PF: "none", Cores: 1, Warmup: 1, Measure: 2, Degree: 1}
	if g.Key() == b.Key() {
		t.Error("trace spec keyed like a generator spec")
	}
}

func TestRunSpecTraceValidate(t *testing.T) {
	unknown := "sha256:" + strings.Repeat("0", 64)
	spec := RunSpec{Trace: unknown, Bench: "x", PF: "none", Cores: 1, Measure: 1, Degree: 1}

	// Without a configured corpus the spec must fail loudly.
	traceCorpusMu.Lock()
	prev := traceCorpus
	traceCorpus = nil
	traceCorpusMu.Unlock()
	err := spec.Validate()
	traceCorpusMu.Lock()
	traceCorpus = prev
	traceCorpusMu.Unlock()
	if err == nil || !strings.Contains(err.Error(), "corpus") {
		t.Errorf("no-corpus validation: %v", err)
	}

	c := withTestCorpus(t)
	if err := spec.Validate(); err == nil {
		t.Error("unknown hash validated against empty corpus")
	}
	malformed := RunSpec{Trace: "sha256:zzzz", Bench: "x", PF: "none", Cores: 1, Measure: 1, Degree: 1}
	if err := malformed.Validate(); err == nil {
		t.Error("malformed trace id validated")
	}
	id := ingest(t, c, "mcf", 1, 0, 16)
	ok := RunSpec{Trace: id, PF: "none", Cores: 1, Measure: 1, Degree: 1}
	ok.Normalize()
	if err := ok.Validate(); err != nil {
		t.Errorf("ingested trace failed validation: %v", err)
	}
}

// TestRunSpecTraceReplayMatchesGenerator pins the tentpole acceptance
// property: a trace captured from a generator and replayed from the
// corpus drives the simulator to the byte-identical encoded result the
// generator produces, provided the capture uses the generator's core-0
// base (1<<40; replay core 0 adds no offset) and is long enough that
// the loop never wraps within the simulated window.
func TestRunSpecTraceReplayMatchesGenerator(t *testing.T) {
	c := withTestCorpus(t)
	const (
		bench = "mcf"
		seed  = 42
		warm  = 10_000
		meas  = 20_000
		n     = 100_000
	)
	id := ingest(t, c, bench, seed, mem.Addr(1)<<40, n)

	gen := RunSpec{Bench: bench, PF: "nextline", Cores: 1, Warmup: warm, Measure: meas, Seed: seed, Degree: 1}
	rep := RunSpec{Trace: id, PF: "nextline", Cores: 1, Warmup: warm, Measure: meas, Seed: seed, Degree: 1}
	rg, err := gen.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := rep.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	bg, br := EncodeResult(rg), EncodeResult(rr)
	if !bytes.Equal(bg, br) {
		t.Errorf("replay diverged from generator:\ngen: %s\nrep: %s", bg, br)
	}
	// Replay is deterministic on its own, too (exercises the warm
	// snapshot path keyed by content hash on the second run).
	rr2, err := rep.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(br, EncodeResult(rr2)) {
		t.Error("same trace spec produced different encoded results")
	}
}
