package experiments

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// TestWarmReuseByteIdentical checks the warm-snapshot acceptance
// criterion: a run that restores post-warmup machine state from the
// process snapshot cache must produce byte-identical CSVs and
// byte-identical sampled telemetry series compared to a run that
// simulated its warmup cold, on both a single-core figure and a
// multi-core mix figure.
func TestWarmReuseByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	sim.GlobalWarmCache().Reset()
	t.Cleanup(sim.GlobalWarmCache().Reset)

	ids := []string{"fig05", "fig16"}
	cold, coldSamples := csvFor(t, tinyParams(), 4, ids)
	hits, _, stores := sim.GlobalWarmCache().Stats()
	if hits != 0 {
		t.Fatalf("cold run restored %d snapshots from an empty cache", hits)
	}
	if stores == 0 {
		t.Fatal("cold run stored no warm snapshots")
	}

	warm, warmSamples := csvFor(t, tinyParams(), 4, ids)
	hits, _, _ = sim.GlobalWarmCache().Stats()
	if hits == 0 {
		t.Fatal("second run restored no warm snapshots")
	}

	if !bytes.Equal(cold, warm) {
		t.Errorf("warm-restored output differs from cold warmup:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
	if len(warmSamples) != len(coldSamples) {
		t.Fatalf("sample series count differs: cold=%d warm=%d", len(coldSamples), len(warmSamples))
	}
	for key, want := range coldSamples {
		got, ok := warmSamples[key]
		if !ok {
			t.Errorf("series %q missing on the warm-restored run", key)
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("series %q differs between cold and warm runs:\n--- cold ---\n%s\n--- warm ---\n%s", key, want, got)
		}
	}
}

// TestWarmKeyNoCrossMixCollision pins the warm-key naming contract for
// multi-programmed mixes. Every mix figure numbers its mixes "mix1"..,
// but the benchmark compositions differ per figure, so a warm key
// derived from the display name alone would let fig18's cells restore
// fig16's warm state (same machine shape, same warmup — the snapshot
// signature cannot tell the workloads apart). The key must therefore
// encode the composition: fig18 simulated after fig16 has populated
// the snapshot cache must match fig18 simulated alone.
func TestWarmKeyNoCrossMixCollision(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	sim.GlobalWarmCache().Reset()
	t.Cleanup(sim.GlobalWarmCache().Reset)

	alone, _ := csvFor(t, tinyParams(), 4, []string{"fig18"})
	sim.GlobalWarmCache().Reset()
	both, _ := csvFor(t, tinyParams(), 4, []string{"fig16", "fig18"})
	if !bytes.HasSuffix(both, alone) {
		t.Errorf("fig18 output changes when fig16 ran first (warm-key collision):\n--- alone ---\n%s\n--- after fig16 ---\n%s", alone, both)
	}
}
