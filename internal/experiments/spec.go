package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/prefetch/bo"
	"repro/internal/prefetch/domino"
	"repro/internal/prefetch/ghb"
	"repro/internal/prefetch/hybrid"
	"repro/internal/prefetch/isb"
	"repro/internal/prefetch/markov"
	"repro/internal/prefetch/misb"
	"repro/internal/prefetch/nextline"
	"repro/internal/prefetch/sms"
	"repro/internal/prefetch/stms"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// RunSpec describes one ad-hoc simulation: a benchmark under one named
// prefetcher configuration on a Table 1 machine, in rate mode when
// Cores > 1 (N copies, one per core). It is the cmd/triagesim shape
// promoted to a first-class, JSON-serializable job spec so the
// simulation service, triagesim, and triagectl all run the exact same
// machine for the same spec — byte-identical results by construction.
type RunSpec struct {
	Bench   string `json:"bench"`
	PF      string `json:"pf"`
	Cores   int    `json:"cores,omitempty"`
	Warmup  uint64 `json:"warmup"`
	Measure uint64 `json:"measure"`
	Seed    uint64 `json:"seed,omitempty"`
	Degree  int    `json:"degree,omitempty"`
	// Trace, when non-empty, replays a materialized corpus trace
	// ("sha256:<hex>", see trace.Corpus) instead of the Bench
	// generator: each core streams the same trace in an endless loop,
	// data addresses offset per core. Bench becomes a display label
	// (defaulted from the hash); Seed does not perturb a replay but
	// remains part of the identity for key-shape uniformity.
	Trace string `json:"trace,omitempty"`
	// Mix, when non-empty, names one workload per core: each entry is
	// either a generator benchmark name or a materialized corpus trace
	// id ("sha256:<hex>"), so a multi-core job can replay distinct
	// captured traces side by side (or mix captures with generators).
	// Cores is derived from len(Mix); Trace and Mix are mutually
	// exclusive. Every core gets the disjoint address base
	// (core+1)<<40; generator entries take the same per-core seed
	// offsets as rate mode, so a mix of N copies of one benchmark is
	// byte-identical to the plain Cores=N spec.
	Mix []string `json:"mix,omitempty"`
	// SampleEvery, when non-zero, attaches a telemetry sampler at this
	// retired-instruction interval; the sampled series is part of the
	// job's result (and of its identity — see Key).
	SampleEvery uint64 `json:"sample_every,omitempty"`
	// CheckEvery enables the simulator's structural invariant sweep
	// (debug mode). It does not affect results and is excluded from Key.
	CheckEvery uint64 `json:"check_every,omitempty"`
}

// Normalize fills the defaulted fields so that equivalent specs
// compare (and hash) equal: an empty prefetcher means "none",
// core/degree counts below one are clamped to one, a trace id is
// canonicalized (bare hex gains its sha256: prefix), and a trace-
// backed spec with no bench label gets one derived from the hash.
func (s *RunSpec) Normalize() {
	if s.PF == "" {
		s.PF = "none"
	}
	if s.Cores < 1 {
		s.Cores = 1
	}
	if s.Degree < 1 {
		s.Degree = 1
	}
	if s.Trace != "" {
		if canon, err := trace.CanonicalTraceID(s.Trace); err == nil {
			s.Trace = canon
		}
		if s.Bench == "" {
			s.Bench = traceLabel(s.Trace)
		}
	}
	if len(s.Mix) > 0 {
		// Mix entries pin the core count; trace-id entries canonicalize
		// so equivalent spellings (bare hex vs sha256:-prefixed) hash to
		// the same content key.
		s.Cores = len(s.Mix)
		for i, entry := range s.Mix {
			if canon, err := trace.CanonicalTraceID(entry); err == nil {
				s.Mix[i] = canon
			}
		}
		if s.Bench == "" {
			labels := make([]string, len(s.Mix))
			for i, entry := range s.Mix {
				if strings.HasPrefix(entry, "sha256:") {
					labels[i] = traceLabel(entry)
				} else {
					labels[i] = entry
				}
			}
			s.Bench = strings.Join(labels, "+")
		}
	}
}

// traceLabel derives a short display label from a canonical trace id.
func traceLabel(id string) string {
	hexPart := strings.TrimPrefix(id, "sha256:")
	if len(hexPart) > 12 {
		hexPart = hexPart[:12]
	}
	return "trace-" + hexPart
}

// Validate reports the first problem that would keep the spec from
// simulating: an unknown benchmark or prefetcher, a trace id that is
// malformed or missing from the configured corpus, or an empty
// measurement window. Call Normalize first.
func (s RunSpec) Validate() error {
	switch {
	case len(s.Mix) > 0:
		if s.Trace != "" {
			return fmt.Errorf("spec sets both trace and mix; pick one")
		}
		for i, entry := range s.Mix {
			if strings.HasPrefix(entry, "sha256:") {
				if _, err := resolveTrace(entry); err != nil {
					return fmt.Errorf("mix core %d: %w", i, err)
				}
			} else if _, ok := workload.ByName(entry); !ok {
				return fmt.Errorf("mix core %d: unknown benchmark %q", i, entry)
			}
		}
	case s.Trace != "":
		if _, err := resolveTrace(s.Trace); err != nil {
			return err
		}
	default:
		if _, ok := workload.ByName(s.Bench); !ok {
			return fmt.Errorf("unknown benchmark %q", s.Bench)
		}
	}
	if _, err := BuildPrefetcher(s.PF, config.Default(1), 1); err != nil {
		return err
	}
	if s.Measure == 0 {
		return fmt.Errorf("spec %s/%s: measure window is zero", s.Bench, s.PF)
	}
	return nil
}

// Key is the canonical identity of the spec's result: every field that
// changes the simulation's outcome (or its sampled series) is folded
// in; debug-only knobs (CheckEvery) are not. Two specs with equal keys
// produce byte-identical results, which is what makes the service's
// result store content-addressed.
func (s RunSpec) Key() string {
	bench := s.Bench
	if s.Trace != "" {
		// A trace-backed run's workload identity is the content hash,
		// not the display label: two submissions of the same trace under
		// different labels dedup onto one simulation.
		bench = s.Trace
	}
	if len(s.Mix) > 0 {
		// A mix's identity is its per-core composition — canonical
		// trace hashes and benchmark names, never display labels.
		bench = strings.Join(s.Mix, "+")
	}
	k := fmt.Sprintf("%s/%s/x%d/w%d/m%d/s%d/d%d",
		bench, s.PF, s.Cores, s.Warmup, s.Measure, s.Seed, s.Degree)
	if s.SampleEvery > 0 {
		k += fmt.Sprintf("/t%d", s.SampleEvery)
	}
	return k
}

// Run executes the simulation. The machine construction mirrors
// cmd/triagesim exactly (per-core seeds offset by 104729, disjoint
// address spaces via (core+1)<<40), so a service job and a direct
// triagesim run of the same spec return identical results. hooks may
// be nil. Construction problems return an error; a watchdog abort or
// invariant panic propagates as a panic for the caller's Guarded/
// recover wrapper, like every other pooled run.
func (s RunSpec) Run(hooks *telemetry.Hooks) (sim.Result, error) {
	s.Normalize()
	if err := s.Validate(); err != nil {
		return sim.Result{}, err
	}
	var spec workload.Spec
	warmBench := s.Bench
	if s.Trace != "" {
		id, err := resolveTrace(s.Trace)
		if err != nil {
			return sim.Result{}, err
		}
		// Replay: every core streams the trace from disk in a loop.
		// Core 0 replays raw addresses; higher cores offset by c<<40 for
		// the disjoint address spaces rate mode assumes. The content
		// hash — not the display label — names the warm prefix.
		spec = workload.Replay(s.Bench, TraceCorpus(), id, workload.Server)
		warmBench = id
	} else if len(s.Mix) > 0 {
		// The composition — canonical ids and names, '+'-joined — names
		// the warm prefix, mirroring how figure mixes key snapshots.
		warmBench = strings.Join(s.Mix, "+")
	} else {
		spec, _ = workload.ByName(s.Bench)
	}
	m := config.Default(s.Cores)
	ws := make([]trace.Reader, s.Cores)
	pfs := make([]prefetch.Prefetcher, s.Cores)
	for c := 0; c < s.Cores; c++ {
		switch {
		case len(s.Mix) > 0:
			// Per-core workloads share the uniform disjoint base
			// (core+1)<<40 whatever their kind, so a captured trace can
			// sit next to a generator without address-space overlap.
			// Generator entries take the rate-mode seed offsets, making a
			// mix of N copies of one benchmark byte-identical to the
			// plain Cores=N spec.
			entry := s.Mix[c]
			if strings.HasPrefix(entry, "sha256:") {
				id, err := resolveTrace(entry)
				if err != nil {
					return sim.Result{}, err
				}
				sp := workload.Replay(traceLabel(id), TraceCorpus(), id, workload.Server)
				ws[c] = sp.New(0, mem.Addr(c+1)<<40)
			} else {
				sp, ok := workload.ByName(entry)
				if !ok {
					return sim.Result{}, fmt.Errorf("mix core %d: unknown benchmark %q", c, entry)
				}
				ws[c] = sp.New(s.Seed+uint64(c)*104729, mem.Addr(c+1)<<40)
			}
		case s.Trace != "":
			ws[c] = spec.New(0, mem.Addr(c)<<40)
		default:
			ws[c] = spec.New(s.Seed+uint64(c)*104729, mem.Addr(c+1)<<40)
		}
		p, err := BuildPrefetcher(s.PF, m, s.Degree)
		if err != nil {
			return sim.Result{}, err
		}
		pfs[c] = p
	}
	// BuildPrefetcher resolves PF names canonically process-wide, and
	// Degree parameterizes the build, so bench+pf+degree+cores+warmup+
	// seed pins the complete warm prefix for snapshot reuse (the trace
	// content hash stands in for bench on replays).
	machine, err := sim.New(sim.Options{
		Machine:             m,
		Workloads:           ws,
		Prefetchers:         pfs,
		WarmupInstructions:  s.Warmup,
		MeasureInstructions: s.Measure,
		Telemetry:           hooks,
		CheckEvery:          s.CheckEvery,
		WarmKey: warmKey("spec", warmBench, fmt.Sprintf("%s/d%d", s.PF, s.Degree),
			s.Cores, s.Warmup, s.Seed),
	})
	if err != nil {
		return sim.Result{}, err
	}
	return machine.Run(), nil
}

// BuildPrefetcher constructs the named prefetcher configuration for one
// core of machine m: none, stride-only, nextline, ghb, markov, bo, sms,
// stms, domino, isb, misb, triage-512k, triage-1m, triage-dyn,
// triage-dynutil, triage-unlimited, or a '+'-joined hybrid such as
// triage+bo ("triage" in a hybrid means triage-dyn). Every caller that
// names prefetchers on a command line or over the wire resolves them
// here, so the names cannot drift between tools.
func BuildPrefetcher(name string, m config.Machine, degree int) (prefetch.Prefetcher, error) {
	ticks := llcTicks(m)
	mk := func(n string) (prefetch.Prefetcher, error) {
		switch n {
		case "none", "stride-only":
			return nil, nil
		case "bo":
			return bo.New(), nil
		case "sms":
			return sms.New(), nil
		case "stms":
			return stms.New(), nil
		case "domino":
			return domino.New(), nil
		case "misb":
			return misb.New(), nil
		case "isb":
			return isb.New(), nil
		case "markov":
			return markov.New(1 << 20), nil
		case "ghb":
			return ghb.New(512), nil
		case "nextline":
			return nextline.New(1), nil
		case "triage-512k":
			return core.New(core.Config{Mode: core.Static, StaticBytes: 512 << 10, LLCLatencyTicks: ticks}), nil
		case "triage-1m":
			return core.New(core.Config{Mode: core.Static, StaticBytes: 1 << 20, LLCLatencyTicks: ticks}), nil
		case "triage-dyn":
			return core.New(core.Config{Mode: core.Dynamic, LLCLatencyTicks: ticks}), nil
		case "triage-dynutil":
			return core.New(core.Config{Mode: core.DynamicUtility, LLCLatencyTicks: ticks}), nil
		case "triage-unlimited":
			return core.New(core.Config{Mode: core.Unlimited, LLCLatencyTicks: ticks}), nil
		default:
			return nil, fmt.Errorf("unknown prefetcher %q", n)
		}
	}
	if strings.Contains(name, "+") {
		parts := strings.Split(name, "+")
		var ps []prefetch.Prefetcher
		for _, part := range parts {
			if part == "triage" {
				part = "triage-dyn"
			}
			p, err := mk(part)
			if err != nil {
				return nil, err
			}
			if p == nil {
				return nil, fmt.Errorf("cannot compose %q", part)
			}
			ps = append(ps, p)
		}
		return hybrid.New(ps...), nil
	}
	p, err := mk(name)
	if err != nil {
		return nil, err
	}
	if p != nil && degree > 1 {
		if ds, ok := p.(prefetch.DegreeSetter); ok {
			ds.SetDegree(degree)
		}
	}
	return p, nil
}

// EncodeResult renders a sim.Result as indented JSON with a trailing
// newline — the one wire/disk encoding shared by triagesim -json, the
// service result store, and triagectl, so "byte-identical results"
// is checkable with cmp(1). sim.Result round-trips exactly through
// JSON (uint64s parse exactly, float64 uses shortest-round-trip
// encoding), so decode+re-encode is byte-stable.
func EncodeResult(res sim.Result) []byte {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		// sim.Result is plain exported numeric data; Marshal cannot fail.
		panic(fmt.Sprintf("experiments: encoding sim.Result: %v", err))
	}
	return append(b, '\n')
}

// fingerprintOf hashes the canonical JSON of v.
func fingerprintOf(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("experiments: fingerprint: %v", err))
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// ConfigFingerprint identifies the simulated universe results belong
// to: the machine configuration (Table 1 parameters) plus the workload
// suite identity. A checkpoint or result store stamped with it refuses
// to serve results simulated under different parameters.
func ConfigFingerprint(m config.Machine) string {
	return fingerprintOf(struct {
		Machine   config.Machine `json:"machine"`
		Workloads []string       `json:"workloads"`
	}{m, workload.Names()})
}

// Fingerprint extends ConfigFingerprint with the experiment-scale
// parameters that shape results (instruction windows, mix count, seed,
// sampling interval). Debug/fault knobs (Deadline, Stall, Retries,
// CheckEvery, FaultHook) change nothing about a successful run's
// output and are excluded.
func (p Params) Fingerprint(m config.Machine) string {
	return fingerprintOf(struct {
		Machine      config.Machine `json:"machine"`
		Workloads    []string       `json:"workloads"`
		Warmup       uint64         `json:"warmup"`
		Measure      uint64         `json:"measure"`
		MultiWarmup  uint64         `json:"multi_warmup"`
		MultiMeasure uint64         `json:"multi_measure"`
		Mixes        int            `json:"mixes"`
		Seed         uint64         `json:"seed"`
		SampleEvery  uint64         `json:"sample_every"`
	}{m, workload.Names(), p.Warmup, p.Measure, p.MultiWarmup, p.MultiMeasure, p.Mixes, p.Seed, p.SampleEvery})
}
