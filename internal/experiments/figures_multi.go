package experiments

import (
	"fmt"
	"sort"

	"repro/internal/workload"
)

// Fig14 evaluates the server workloads on a 4-core system (paper:
// BO+Triage 13.7% vs BO 8.6%; Triage wins the irregular three, BO/SMS
// the regular two; BO+SMS degrades vs BO).
func (r *Runner) Fig14() *Table {
	configs := []namedPF{cfgSMS, cfgBO, cfgTDyn, {"Triage_Static", pfTriageStatic(1 << 20)},
		cfgBOSMS, cfgBOTStatic, cfgBOTDyn}
	t := &Table{ID: "fig14", Title: "CloudSuite-like server workloads, 4-core"}
	t.Header = append([]string{"benchmark"}, names(configs)...)
	sums := make([][]float64, len(configs))
	for _, spec := range workload.CloudSuite() {
		base := runRate(r.P, spec, 4, pfNone)
		row := []string{spec.Name}
		for i, cfg := range configs {
			res := runRate(r.P, spec, 4, cfg.f)
			sp := res.SpeedupOver(base)
			sums[i] = append(sums[i], sp)
			row = append(row, fmtSpeedup(sp))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean"}
	for i := range configs {
		row = append(row, fmtSpeedup(geomean(sums[i])))
	}
	t.AddRow(row...)
	t.Note("shape target: Triage wins cassandra/classification/cloud9; BO wins nutch/streaming; BO+Triage best overall; BO+SMS <= BO")
	return t
}

// Fig15 compares Triage-Static against Triage-Dynamic on 4-core
// irregular mixes sharing the LLC (paper: 4.8% vs 10.2%).
func (r *Runner) Fig15() *Table {
	mixes := workload.Mixes(r.P.Mixes, 4, r.P.Seed, true)
	t := &Table{ID: "fig15", Title: "Shared-cache 4-core irregular mixes: static vs dynamic partitioning"}
	t.Header = []string{"mix", "Triage_Static", "Triage_Dynamic"}
	type rowv struct {
		name   string
		st, dy float64
	}
	var rows []rowv
	for _, mix := range mixes {
		base := runMix(r.P, mix, pfNone)
		st := runMix(r.P, mix, pfTriageStatic(1<<20)).SpeedupOver(base)
		dy := runMix(r.P, mix, pfTriageDyn).SpeedupOver(base)
		rows = append(rows, rowv{mix.Name, st, dy})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].dy > rows[j].dy })
	var sts, dys []float64
	for _, rv := range rows {
		sts = append(sts, rv.st)
		dys = append(dys, rv.dy)
		t.AddRow(rv.name, fmtSpeedup(rv.st), fmtSpeedup(rv.dy))
	}
	t.AddRow("geomean", fmtSpeedup(geomean(sts)), fmtSpeedup(geomean(dys)))
	t.Note("shape target: dynamic > static when the LLC is shared")
	return t
}

// Fig16 runs 4-core irregular mixes with BO, Triage-Dynamic, and the
// hybrid (paper: 10.6%, 10.2%, 15.9%).
func (r *Runner) Fig16() *Table {
	mixes := workload.Mixes(r.P.Mixes, 4, r.P.Seed, true)
	configs := []namedPF{cfgBO, cfgTDyn, cfgBOTDyn}
	t := &Table{ID: "fig16", Title: "4-core irregular multi-programmed mixes"}
	t.Header = append([]string{"mix"}, names(configs)...)
	sums := make([][]float64, len(configs))
	for _, mix := range mixes {
		base := runMix(r.P, mix, pfNone)
		row := []string{mix.Name}
		for i, cfg := range configs {
			sp := runMix(r.P, mix, cfg.f).SpeedupOver(base)
			sums[i] = append(sums[i], sp)
			row = append(row, fmtSpeedup(sp))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean"}
	for i := range configs {
		row = append(row, fmtSpeedup(geomean(sums[i])))
	}
	t.AddRow(row...)
	t.Note("shape target: BO+Triage_Dyn > BO and > Triage_Dyn")
	return t
}

// Fig17 scales core count: MISB vs Triage-Dynamic on irregular mixes at
// 2, 4, 8 and 16 cores (paper: MISB wins at 2 cores, Triage wins in the
// bandwidth-starved 16-core system).
func (r *Runner) Fig17() *Table {
	t := &Table{ID: "fig17", Title: "MISB vs Triage across core counts (irregular mixes)"}
	t.Header = []string{"cores", "MISB_48KB", "Triage_Dynamic"}
	mixCount := r.P.Mixes / 2
	if mixCount < 2 {
		mixCount = 2
	}
	for _, cores := range []int{2, 4, 8, 16} {
		mixes := workload.Mixes(mixCount, cores, r.P.Seed+uint64(cores), true)
		var mi, tr []float64
		for _, mix := range mixes {
			base := runMix(r.P, mix, pfNone)
			mi = append(mi, runMix(r.P, mix, pfMISB).SpeedupOver(base))
			tr = append(tr, runMix(r.P, mix, pfTriageDyn).SpeedupOver(base))
		}
		t.AddRow(fmt.Sprintf("%d", cores), fmtSpeedup(geomean(mi)), fmtSpeedup(geomean(tr)))
	}
	t.Note("paper: 2-core 16.0%% vs 12.1%%; 16-core 4.3%% vs 6.2%% (crossover)")
	t.Note("shape target: MISB's advantage shrinks with cores and inverts by 16")
	return t
}

// Fig18 runs 4-core mixes that include regular programs (paper:
// BO+Triage 23% vs BO 19.3%; Triage alone only 4.3%).
func (r *Runner) Fig18() *Table {
	mixes := workload.Mixes(r.P.Mixes, 4, r.P.Seed^0xBEEF, false)
	configs := []namedPF{cfgBOTDyn, cfgBO, cfgTDyn}
	t := &Table{ID: "fig18", Title: "4-core mixed regular+irregular mixes"}
	t.Header = append([]string{"mix"}, names(configs)...)
	sums := make([][]float64, len(configs))
	for _, mix := range mixes {
		base := runMix(r.P, mix, pfNone)
		row := []string{mix.Name}
		for i, cfg := range configs {
			sp := runMix(r.P, mix, cfg.f).SpeedupOver(base)
			sums[i] = append(sums[i], sp)
			row = append(row, fmtSpeedup(sp))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean"}
	for i := range configs {
		row = append(row, fmtSpeedup(geomean(sums[i])))
	}
	t.AddRow(row...)
	t.Note("shape target: BO+Triage > BO > Triage-alone on mixed mixes")
	return t
}

// Fig19 reports the per-core LLC ways allocated to metadata by
// Triage-Dynamic on mixed 4-core mixes (paper: allocations vary by mix
// and by core; regular programs get ~0 ways).
func (r *Runner) Fig19() *Table {
	mixes := workload.Mixes(r.P.Mixes, 4, r.P.Seed^0xBEEF, false)
	t := &Table{ID: "fig19", Title: "LLC ways allocated to metadata per core (Triage-Dynamic, mixed mixes)"}
	t.Header = []string{"mix", "core0", "core1", "core2", "core3", "benchmarks"}
	for _, mix := range mixes {
		res := runMix(r.P, mix, pfTriageDyn)
		row := []string{mix.Name}
		namesCol := ""
		for c, cr := range res.Cores {
			row = append(row, fmtF(cr.AvgMetadataWays))
			if c > 0 {
				namesCol += "+"
			}
			namesCol += mix.Specs[c].Name
		}
		row = append(row, namesCol)
		t.AddRow(row...)
	}
	t.Note("units: time-averaged 16-way-LLC ways; shape target: allocations differ across cores and mixes; regular benchmarks get ~0")
	return t
}
