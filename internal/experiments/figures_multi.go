package experiments

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/workload"
)

// launchMixGrid starts every mix's no-prefetch baseline plus the mix x
// config grid on the pool, returning the Futures in input order for a
// deterministic collect pass.
func (r *Runner) launchMixGrid(mixes []workload.MixSpec, configs []namedPF) (bases []*Future[sim.Result], cells [][]*Future[sim.Result]) {
	bases = make([]*Future[sim.Result], len(mixes))
	cells = make([][]*Future[sim.Result], len(mixes))
	for mi, mix := range mixes {
		bases[mi] = r.runMixF(mix, cfgNone.name, pfNone)
		cells[mi] = make([]*Future[sim.Result], len(configs))
		for ci, cfg := range configs {
			cells[mi][ci] = r.runMixF(mix, cfg.name, cfg.f)
		}
	}
	return bases, cells
}

// Fig14 evaluates the server workloads on a 4-core system (paper:
// BO+Triage 13.7% vs BO 8.6%; Triage wins the irregular three, BO/SMS
// the regular two; BO+SMS degrades vs BO).
func (r *Runner) Fig14() *Table {
	configs := []namedPF{cfgSMS, cfgBO, cfgTDyn, {"Triage_Static", pfTriageStatic(1 << 20)},
		cfgBOSMS, cfgBOTStatic, cfgBOTDyn}
	t := &Table{ID: "fig14", Title: "CloudSuite-like server workloads, 4-core"}
	t.Header = append([]string{"benchmark"}, names(configs)...)
	suite := workload.CloudSuite()
	baseFs := make([]*Future[sim.Result], len(suite))
	cellFs := make([][]*Future[sim.Result], len(suite))
	for si, spec := range suite {
		baseFs[si] = r.runRateF(spec, 4, cfgNone.name, pfNone)
		cellFs[si] = make([]*Future[sim.Result], len(configs))
		for ci, cfg := range configs {
			cellFs[si][ci] = r.runRateF(spec, 4, cfg.name, cfg.f)
		}
	}
	sums := make([][]float64, len(configs))
	for si, spec := range suite {
		base := baseFs[si].Wait()
		row := []string{spec.Name}
		for i := range configs {
			res := cellFs[si][i].Wait()
			sp := res.SpeedupOver(base)
			sums[i] = append(sums[i], sp)
			row = append(row, fmtSpeedup(sp))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean"}
	for i := range configs {
		row = append(row, fmtSpeedup(geomean(sums[i])))
	}
	t.AddRow(row...)
	t.Note("shape target: Triage wins cassandra/classification/cloud9; BO wins nutch/streaming; BO+Triage best overall; BO+SMS <= BO")
	return t
}

// Fig15 compares Triage-Static against Triage-Dynamic on 4-core
// irregular mixes sharing the LLC (paper: 4.8% vs 10.2%).
func (r *Runner) Fig15() *Table {
	mixes := workload.Mixes(r.P.Mixes, 4, r.P.Seed, true)
	t := &Table{ID: "fig15", Title: "Shared-cache 4-core irregular mixes: static vs dynamic partitioning"}
	t.Header = []string{"mix", "Triage_Static", "Triage_Dynamic"}
	type rowv struct {
		name   string
		st, dy float64
	}
	bases, cells := r.launchMixGrid(mixes, []namedPF{
		{"Triage_Static", pfTriageStatic(1 << 20)}, cfgTDyn,
	})
	var rows []rowv
	for mi, mix := range mixes {
		base := bases[mi].Wait()
		st := cells[mi][0].Wait().SpeedupOver(base)
		dy := cells[mi][1].Wait().SpeedupOver(base)
		rows = append(rows, rowv{mix.Name, st, dy})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].dy > rows[j].dy })
	var sts, dys []float64
	for _, rv := range rows {
		sts = append(sts, rv.st)
		dys = append(dys, rv.dy)
		t.AddRow(rv.name, fmtSpeedup(rv.st), fmtSpeedup(rv.dy))
	}
	t.AddRow("geomean", fmtSpeedup(geomean(sts)), fmtSpeedup(geomean(dys)))
	t.Note("shape target: dynamic > static when the LLC is shared")
	return t
}

// Fig16 runs 4-core irregular mixes with BO, Triage-Dynamic, and the
// hybrid (paper: 10.6%, 10.2%, 15.9%).
func (r *Runner) Fig16() *Table {
	mixes := workload.Mixes(r.P.Mixes, 4, r.P.Seed, true)
	configs := []namedPF{cfgBO, cfgTDyn, cfgBOTDyn}
	t := &Table{ID: "fig16", Title: "4-core irregular multi-programmed mixes"}
	t.Header = append([]string{"mix"}, names(configs)...)
	bases, cells := r.launchMixGrid(mixes, configs)
	sums := make([][]float64, len(configs))
	for mi, mix := range mixes {
		base := bases[mi].Wait()
		row := []string{mix.Name}
		for i := range configs {
			sp := cells[mi][i].Wait().SpeedupOver(base)
			sums[i] = append(sums[i], sp)
			row = append(row, fmtSpeedup(sp))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean"}
	for i := range configs {
		row = append(row, fmtSpeedup(geomean(sums[i])))
	}
	t.AddRow(row...)
	t.Note("shape target: BO+Triage_Dyn > BO and > Triage_Dyn")
	return t
}

// Fig17 scales core count: MISB vs Triage-Dynamic on irregular mixes at
// 2, 4, 8 and 16 cores (paper: MISB wins at 2 cores, Triage wins in the
// bandwidth-starved 16-core system).
func (r *Runner) Fig17() *Table {
	t := &Table{ID: "fig17", Title: "MISB vs Triage across core counts (irregular mixes)"}
	t.Header = []string{"cores", "MISB_48KB", "Triage_Dynamic"}
	mixCount := r.P.Mixes / 2
	if mixCount < 2 {
		mixCount = 2
	}
	coreCounts := []int{2, 4, 8, 16}
	baseFs := make([][]*Future[sim.Result], len(coreCounts))
	cellFs := make([][][]*Future[sim.Result], len(coreCounts))
	for ci, cores := range coreCounts {
		mixes := workload.Mixes(mixCount, cores, r.P.Seed+uint64(cores), true)
		baseFs[ci], cellFs[ci] = r.launchMixGrid(mixes, []namedPF{cfgMISB, cfgTDyn})
	}
	for ci, cores := range coreCounts {
		var mi, tr []float64
		for mj := range baseFs[ci] {
			base := baseFs[ci][mj].Wait()
			mi = append(mi, cellFs[ci][mj][0].Wait().SpeedupOver(base))
			tr = append(tr, cellFs[ci][mj][1].Wait().SpeedupOver(base))
		}
		t.AddRow(fmt.Sprintf("%d", cores), fmtSpeedup(geomean(mi)), fmtSpeedup(geomean(tr)))
	}
	t.Note("paper: 2-core 16.0%% vs 12.1%%; 16-core 4.3%% vs 6.2%% (crossover)")
	t.Note("shape target: MISB's advantage shrinks with cores and inverts by 16")
	return t
}

// Fig18 runs 4-core mixes that include regular programs (paper:
// BO+Triage 23% vs BO 19.3%; Triage alone only 4.3%).
func (r *Runner) Fig18() *Table {
	mixes := workload.Mixes(r.P.Mixes, 4, r.P.Seed^0xBEEF, false)
	configs := []namedPF{cfgBOTDyn, cfgBO, cfgTDyn}
	t := &Table{ID: "fig18", Title: "4-core mixed regular+irregular mixes"}
	t.Header = append([]string{"mix"}, names(configs)...)
	bases, cells := r.launchMixGrid(mixes, configs)
	sums := make([][]float64, len(configs))
	for mi, mix := range mixes {
		base := bases[mi].Wait()
		row := []string{mix.Name}
		for i := range configs {
			sp := cells[mi][i].Wait().SpeedupOver(base)
			sums[i] = append(sums[i], sp)
			row = append(row, fmtSpeedup(sp))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean"}
	for i := range configs {
		row = append(row, fmtSpeedup(geomean(sums[i])))
	}
	t.AddRow(row...)
	t.Note("shape target: BO+Triage > BO > Triage-alone on mixed mixes")
	return t
}

// Fig19 reports the per-core LLC ways allocated to metadata by
// Triage-Dynamic on mixed 4-core mixes (paper: allocations vary by mix
// and by core; regular programs get ~0 ways).
func (r *Runner) Fig19() *Table {
	mixes := workload.Mixes(r.P.Mixes, 4, r.P.Seed^0xBEEF, false)
	t := &Table{ID: "fig19", Title: "LLC ways allocated to metadata per core (Triage-Dynamic, mixed mixes)"}
	t.Header = []string{"mix", "core0", "core1", "core2", "core3", "benchmarks"}
	resFs := make([]*Future[sim.Result], len(mixes))
	for mi, mix := range mixes {
		resFs[mi] = r.runMixF(mix, cfgTDyn.name, pfTriageDyn)
	}
	for mi, mix := range mixes {
		res := resFs[mi].Wait()
		row := []string{mix.Name}
		namesCol := ""
		for c, cr := range res.Cores {
			row = append(row, fmtF(cr.AvgMetadataWays))
			if c > 0 {
				namesCol += "+"
			}
			namesCol += mix.Specs[c].Name
		}
		row = append(row, namesCol)
		t.AddRow(row...)
	}
	t.Note("units: time-averaged 16-way-LLC ways; shape target: allocations differ across cores and mixes; regular benchmarks get ~0")
	return t
}
