package experiments

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Runner executes figures over a worker pool, caching single-core runs
// so that baselines shared between figures (e.g. the no-prefetch runs
// used by Figs. 5, 6, 7, 10, 11, 12) are simulated once. The cache is
// single-flight: each key maps to the Future of its one simulation, so
// figures running concurrently (RunAll) share in-flight baselines
// instead of duplicating them.
type Runner struct {
	P    Params
	pool *Pool

	mu         sync.Mutex
	cache      map[string]*Future[sim.Result]
	samples    map[string][]byte // JSONL series per cached run (SampleEvery)
	sampleErrs map[string]error  // series lost to encoding failures

	// ckpt, when set, persists every completed cached run and satisfies
	// repeat keys from disk (resume of an interrupted sweep).
	ckpt *Checkpoint

	runs     atomic.Uint64
	simInstr atomic.Uint64
	restored atomic.Uint64
}

// SetCheckpoint attaches an on-disk store of completed runs. Call
// before scheduling work: cached keys already in the store resolve
// from disk, and newly simulated keys are appended as they finish.
func (r *Runner) SetCheckpoint(c *Checkpoint) { r.ckpt = c }

// NewRunner returns a Runner with the given parameters and a pool
// sized to the machine. Figures produce identical tables for any pool
// size; the pool only sets how many simulations run at once.
func NewRunner(p Params) *Runner { return NewRunnerPool(p, DefaultPool()) }

// NewRunnerPool returns a Runner executing on an explicit pool
// (cmd/experiments -j, and the determinism tests that compare -j 1
// against -j 8 output).
func NewRunnerPool(p Params, pool *Pool) *Runner {
	return &Runner{P: p, pool: pool, cache: make(map[string]*Future[sim.Result])}
}

// namedPF pairs a display name with a prefetcher factory.
//
// Naming contract: the name must identify the prefetcher configuration
// uniquely within the process — two namedPF values with the same name
// must build behaviorally identical prefetchers. The single-flight
// cache key and the warm-snapshot key (warmKey) both embed the name,
// so a name reused for a different configuration would silently alias
// cells. Inline namedPF literals in figures (degree sweeps, epoch
// sweeps) must encode every varied parameter in the name.
type namedPF struct {
	name string
	f    pfFactory
}

// single runs (and caches) one benchmark x prefetcher configuration.
func (r *Runner) single(spec workload.Spec, cfg namedPF) sim.Result {
	return r.singleF(spec, cfg).Wait()
}

var (
	cfgNone      = namedPF{"NoL2PF", pfNone}
	cfgBO        = namedPF{"BO", pfBO}
	cfgSMS       = namedPF{"SMS", pfSMS}
	cfgT512      = namedPF{"Triage_512KB", pfTriageStatic(512 << 10)}
	cfgT1M       = namedPF{"Triage_1MB", pfTriageStatic(1 << 20)}
	cfgTDyn      = namedPF{"Triage_Dynamic", pfTriageDyn}
	cfgSTMS      = namedPF{"STMS", pfSTMS}
	cfgDomino    = namedPF{"Domino", pfDomino}
	cfgMISB      = namedPF{"MISB_48KB", pfMISB}
	cfgBOTDyn    = namedPF{"BO+Triage_Dyn", pfHybrid(pfTriageDyn, pfBO)} // accurate component first: its requests win queue slots
	cfgBOSMS     = namedPF{"BO+SMS", pfHybrid(pfBO, pfSMS)}
	cfgTUnl      = namedPF{"Triage_Unlimited", pfTriageUnlimited}
	cfgBOTStatic = namedPF{"BO+Triage_Static", pfHybrid(pfTriageStatic(1<<20), pfBO)}
)

// Fig01 reproduces the metadata reuse distribution (Fig. 1): an
// unlimited-metadata Triage on the mcf-like workload, reporting the
// reuse-count distribution over metadata entries.
func (r *Runner) Fig01() *Table {
	spec, _ := workload.ByName("mcf")
	var captured *core.Triage
	factory := func(m config.Machine) prefetch.Prefetcher {
		captured = core.New(core.Config{Mode: core.Unlimited, LLCLatencyTicks: llcTicks(m)})
		return captured
	}
	r.runSingleF(spec, factory, nil).Wait()
	counts := captured.ReuseCounts()
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })

	t := &Table{
		ID:     "fig01",
		Title:  "Metadata reuse distribution (mcf): reuse count by entry-rank percentile",
		Header: []string{"entry percentile", "reuse count"},
	}
	if len(counts) == 0 {
		t.Note("no metadata entries recorded")
		return t
	}
	for _, pct := range []int{0, 1, 2, 5, 10, 15, 25, 50, 75, 90, 100} {
		idx := pct * (len(counts) - 1) / 100
		t.AddRow(fmt.Sprintf("top %d%%", pct), fmt.Sprintf("%d", counts[idx]))
	}
	over15 := 0
	for _, c := range counts {
		if c > 15 {
			over15++
		}
	}
	frac := float64(over15) / float64(len(counts))
	t.AddRow("entries", fmt.Sprintf("%d total", len(counts)))
	t.Note("%.1f%% of %d entries are reused more than 15 times (paper: ~15%% of 60K)",
		frac*100, len(counts))
	t.Note("shape target: reuse is heavily skewed toward a small fraction of entries")
	return t
}

// launchGrid starts the suite x configs simulations plus each
// benchmark's no-prefetch baseline on the pool, returning the Futures
// in suite/config order. Figures collect from these in a deterministic
// second pass, so tables are identical for any pool size.
func (r *Runner) launchGrid(suite []workload.Spec, configs []namedPF) (bases []*Future[sim.Result], cells [][]*Future[sim.Result]) {
	bases = make([]*Future[sim.Result], len(suite))
	cells = make([][]*Future[sim.Result], len(suite))
	for si, spec := range suite {
		bases[si] = r.singleF(spec, cfgNone)
		cells[si] = make([]*Future[sim.Result], len(configs))
		for ci, cfg := range configs {
			cells[si][ci] = r.singleF(spec, cfg)
		}
	}
	return bases, cells
}

// speedupTable runs suite x configs and reports per-benchmark speedups
// over the no-prefetch baseline, with a geometric-mean summary row.
func (r *Runner) speedupTable(id, title string, suite []workload.Spec, configs []namedPF) *Table {
	t := &Table{ID: id, Title: title}
	t.Header = append([]string{"benchmark"}, names(configs)...)
	bases, cells := r.launchGrid(suite, configs)
	means := make([][]float64, len(configs))
	for si, spec := range suite {
		base, berr := bases[si].Result()
		row := []string{spec.Name}
		for i := range configs {
			// Collect every cell even under a failed baseline so no run
			// is left half-finished when the figure returns.
			res, err := cells[si][i].Result()
			if berr != nil || err != nil {
				row = append(row, "ERROR")
				if err != nil {
					t.fail(err)
				}
				continue
			}
			sp := res.SpeedupOver(base)
			means[i] = append(means[i], sp)
			row = append(row, fmtSpeedup(sp))
		}
		if berr != nil {
			t.fail(berr)
		}
		t.AddRow(row...)
	}
	sumRow := []string{"geomean"}
	for i := range configs {
		sumRow = append(sumRow, fmtSpeedup(geomean(means[i])))
	}
	t.AddRow(sumRow...)
	return t
}

func names(cfgs []namedPF) []string {
	out := make([]string, len(cfgs))
	for i, c := range cfgs {
		out[i] = c.name
	}
	return out
}

// Fig05 compares Triage against the on-chip prefetchers BO and SMS on
// the irregular SPEC subset (paper: 23.5% vs 5.8% vs 2.2%).
func (r *Runner) Fig05() *Table {
	t := r.speedupTable("fig05",
		"Speedup over NoL2PF, irregular SPEC (Triage vs on-chip prefetchers)",
		workload.IrregularSuite(),
		[]namedPF{cfgBO, cfgSMS, cfgT512, cfgT1M, cfgTDyn})
	t.Note("shape target: Triage variants >> BO > SMS; Triage_Dynamic >= Triage_1MB")
	return t
}

// Fig06 reports prefetcher coverage and accuracy on the irregular
// subset (paper: Triage 42.0%/77.2%, BO 13.0%/43.3%, SMS 4.6%/39.6%).
func (r *Runner) Fig06() *Table {
	configs := []namedPF{cfgBO, cfgSMS, cfgT512, cfgT1M, cfgTDyn}
	t := &Table{ID: "fig06", Title: "Prefetcher coverage / accuracy, irregular SPEC"}
	t.Header = append([]string{"benchmark"}, names(configs)...)
	suite := workload.IrregularSuite()
	bases, cells := r.launchGrid(suite, configs)
	covSums := make([][]float64, len(configs))
	accSums := make([][]float64, len(configs))
	for si, spec := range suite {
		base := bases[si].Wait()
		row := []string{spec.Name}
		for i := range configs {
			res := cells[si][i].Wait()
			cov, acc := res.CoverageOver(base), res.Accuracy()
			covSums[i] = append(covSums[i], cov)
			accSums[i] = append(accSums[i], acc)
			row = append(row, fmt.Sprintf("%.0f%%/%.0f%%", cov*100, acc*100))
		}
		t.AddRow(row...)
	}
	row := []string{"average"}
	for i := range configs {
		row = append(row, fmt.Sprintf("%.0f%%/%.0f%%", mean(covSums[i])*100, mean(accSums[i])*100))
	}
	t.AddRow(row...)
	t.Note("cells are coverage/accuracy; shape target: Triage highest on both")
	return t
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// Fig07 breaks down Triage's gain vs the LLC capacity it consumes:
// an optimistic Triage with a free 1MB store, a 1MB-LLC machine with no
// prefetching, and real Triage (1MB LLC data + 1MB metadata).
func (r *Runner) Fig07() *Table {
	t := &Table{
		ID:     "fig07",
		Title:  "Breakdown of Triage's improvement vs capacity loss (speedup over 2MB LLC, NoL2PF)",
		Header: []string{"benchmark", "2MB LLC + 1MB Triage (free)", "1MB LLC, NoL2PF", "1MB LLC + 1MB Triage"},
	}
	suite := workload.IrregularSuite()
	baseFs := make([]*Future[sim.Result], len(suite))
	optFs := make([]*Future[sim.Result], len(suite))
	smallFs := make([]*Future[sim.Result], len(suite))
	realFs := make([]*Future[sim.Result], len(suite))
	for si, spec := range suite {
		baseFs[si] = r.singleF(spec, cfgNone)
		// Optimistic: metadata store does not consume LLC capacity.
		optFs[si] = r.runSingleF(spec, pfTriageStatic(1<<20), func(o *sim.Options) {
			o.NoCapacityLoss = true
		})
		// Capacity loss alone: half-size LLC, no prefetching.
		smallFs[si] = r.runSingleF(spec, pfNone, func(o *sim.Options) {
			o.Machine.LLCBytesPerCore = 1 << 20
		})
		// Real Triage on the normal machine.
		realFs[si] = r.singleF(spec, cfgT1M)
	}
	var free, shrunk, real []float64
	for si, spec := range suite {
		base := baseFs[si].Wait()
		f := optFs[si].Wait().SpeedupOver(base)
		s := smallFs[si].Wait().SpeedupOver(base)
		re := realFs[si].Wait().SpeedupOver(base)
		free = append(free, f)
		shrunk = append(shrunk, s)
		real = append(real, re)
		t.AddRow(spec.Name, fmtSpeedup(f), fmtSpeedup(s), fmtSpeedup(re))
	}
	t.AddRow("geomean", fmtSpeedup(geomean(free)), fmtSpeedup(geomean(shrunk)), fmtSpeedup(geomean(real)))
	t.Note("paper: +31.2%% free-store gain, -7.4%% capacity loss, +23.4%% net")
	t.Note("shape target: prefetching gain far exceeds the capacity penalty")
	return t
}

// Fig08 runs the regular SPEC subset (paper: BO wins, Triage-Dynamic
// avoids harm except slight loss on bzip2-like capacity-bound loops).
func (r *Runner) Fig08() *Table {
	t := r.speedupTable("fig08",
		"Speedup over NoL2PF, regular SPEC subset",
		workload.RegularSuite(),
		[]namedPF{cfgBO, cfgSMS, cfgT512, cfgT1M, cfgTDyn})
	t.Note("shape target: BO >= Triage on regular codes; Triage_Dynamic ~1.0 (no harm)")
	return t
}

// Fig09 sweeps the metadata store size and replacement policy assuming
// no LLC capacity loss (paper Fig. 9: Hawkeye >> LRU at small sizes;
// both approach the unlimited 'Perfect' prefetcher by 1MB).
func (r *Runner) Fig09() *Table {
	sizes := []int{128 << 10, 256 << 10, 512 << 10, 1 << 20}
	t := &Table{ID: "fig09", Title: "Sensitivity to metadata store size (no LLC capacity loss)"}
	t.Header = []string{"store size", "LRU", "Hawkeye"}
	suite := workload.IrregularSuite()
	pols := []core.Replacement{core.LRU, core.Hawkeye}
	baseFs := make([]*Future[sim.Result], len(suite))
	perfFs := make([]*Future[sim.Result], len(suite))
	cellFs := make([][][]*Future[sim.Result], len(sizes)) // [size][spec][pol]
	for si, spec := range suite {
		baseFs[si] = r.singleF(spec, cfgNone)
		perfFs[si] = r.singleF(spec, cfgTUnl)
	}
	for zi, size := range sizes {
		size := size
		cellFs[zi] = make([][]*Future[sim.Result], len(suite))
		for si, spec := range suite {
			cellFs[zi][si] = make([]*Future[sim.Result], len(pols))
			for pi, pol := range pols {
				pol := pol
				cellFs[zi][si][pi] = r.runSingleF(spec, func(m config.Machine) prefetch.Prefetcher {
					return core.New(core.Config{
						Mode: core.Static, StaticBytes: size,
						Replacement: pol, LLCLatencyTicks: llcTicks(m),
					})
				}, func(o *sim.Options) { o.NoCapacityLoss = true })
			}
		}
	}
	for zi, size := range sizes {
		var lru, hawk []float64
		for si := range suite {
			base := baseFs[si].Wait()
			lru = append(lru, cellFs[zi][si][0].Wait().SpeedupOver(base))
			hawk = append(hawk, cellFs[zi][si][1].Wait().SpeedupOver(base))
		}
		t.AddRow(fmt.Sprintf("%dKB", size>>10), fmtSpeedup(geomean(lru)), fmtSpeedup(geomean(hawk)))
	}
	var perfect []float64
	for si := range suite {
		perfect = append(perfect, perfFs[si].Wait().SpeedupOver(baseFs[si].Wait()))
	}
	t.AddRow("unlimited (Perfect)", "-", fmtSpeedup(geomean(perfect)))
	t.Note("paper: 256KB LRU 7.7%% vs Hawkeye 13.7%%; gap shrinks at 1MB; 1MB ~ 75%% of Perfect")
	return t
}

// Fig10 evaluates the BO+Triage hybrid on the irregular subset
// (paper: 24.8% for BO+Triage vs 5.8% for BO alone).
func (r *Runner) Fig10() *Table {
	t := r.speedupTable("fig10",
		"Hybrid prefetching, irregular SPEC",
		workload.IrregularSuite(),
		[]namedPF{cfgBO, cfgTDyn, cfgBOTDyn})
	t.Note("shape target: BO+Triage >= max(BO, Triage) per benchmark")
	return t
}

// Fig11 compares Triage with the off-chip temporal prefetchers: speedup
// (top of Fig. 11) and off-chip traffic relative to NoL2PF (bottom).
func (r *Runner) Fig11() *Table {
	configs := []namedPF{cfgSTMS, cfgDomino, cfgMISB, cfgT1M}
	t := &Table{ID: "fig11", Title: "Off-chip temporal prefetchers: speedup and relative traffic"}
	t.Header = []string{"benchmark"}
	for _, c := range configs {
		t.Header = append(t.Header, c.name+" spd", c.name+" traf")
	}
	suite := workload.IrregularSuite()
	bases, cells := r.launchGrid(suite, configs)
	spSums := make([][]float64, len(configs))
	trSums := make([][]float64, len(configs))
	for si, spec := range suite {
		base := bases[si].Wait()
		row := []string{spec.Name}
		for i := range configs {
			res := cells[si][i].Wait()
			sp := res.SpeedupOver(base)
			tr := 1.0
			if bt := base.TotalTraffic(); bt > 0 {
				tr = float64(res.TotalTraffic()+res.EstimatedMetadataTransfers) / float64(bt)
			}
			spSums[i] = append(spSums[i], sp)
			trSums[i] = append(trSums[i], tr)
			row = append(row, fmtSpeedup(sp), fmtF(tr))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean"}
	for i := range configs {
		row = append(row, fmtSpeedup(geomean(spSums[i])), fmtF(geomean(trSums[i])))
	}
	t.AddRow(row...)
	t.Note("traffic is relative to NoL2PF (1.00 = no overhead); paper overheads: STMS 4.8x, Domino 4.8x, MISB 2.6x, Triage 1.6x")
	t.Note("shape target: MISB > Triage > STMS~Domino on speedup; Triage lowest traffic")
	return t
}

// Fig12 summarizes the design space: average speedup vs average traffic
// overhead per prefetcher (the scatter of Fig. 12).
func (r *Runner) Fig12() *Table {
	configs := []namedPF{cfgBO, cfgSTMS, cfgDomino, cfgMISB, cfgT1M, cfgTDyn}
	t := &Table{
		ID:     "fig12",
		Title:  "Design space: speedup vs off-chip traffic overhead (irregular SPEC averages)",
		Header: []string{"prefetcher", "speedup", "traffic overhead"},
	}
	suite := workload.IrregularSuite()
	bases, cells := r.launchGrid(suite, configs)
	for ci, cfg := range configs {
		var sps, trs []float64
		for si := range suite {
			base := bases[si].Wait()
			res := cells[si][ci].Wait()
			sps = append(sps, res.SpeedupOver(base))
			bt := float64(base.TotalTraffic())
			over := 0.0
			if bt > 0 {
				over = 100 * (float64(res.TotalTraffic()+res.EstimatedMetadataTransfers) - bt) / bt
			}
			trs = append(trs, over)
		}
		t.AddRow(cfg.name, fmtSpeedup(geomean(sps)), fmtPct(mean(trs)))
	}
	t.Note("shape target: Triage dominates STMS/Domino; MISB fastest but with much higher traffic")
	return t
}

// Fig13 estimates metadata-access energy: Triage pays 1 unit per LLC
// metadata access; MISB pays 25 [10, 50] units per off-chip metadata
// access (paper's model).
func (r *Runner) Fig13() *Table {
	t := &Table{
		ID:     "fig13",
		Title:  "Energy overhead of MISB's metadata accesses over Triage (x)",
		Header: []string{"benchmark", "Triage accesses", "MISB accesses", "ratio @10", "ratio @25", "ratio @50"},
	}
	suite := workload.IrregularSuite()
	triFs := make([]*Future[sim.Result], len(suite))
	miFs := make([]*Future[sim.Result], len(suite))
	for si, spec := range suite {
		triFs[si] = r.singleF(spec, cfgT1M)
		miFs[si] = r.singleF(spec, cfgMISB)
	}
	var ratios []float64
	for si, spec := range suite {
		tri := triFs[si].Wait()
		mi := miFs[si].Wait()
		te := float64(tri.TriageLLCMetadataAccesses)
		me := float64(mi.MISBOffChipMetadataAccesses)
		if te == 0 {
			te = 1
		}
		r10, r25, r50 := me*10/te, me*25/te, me*50/te
		ratios = append(ratios, r25)
		t.AddRow(spec.Name,
			fmt.Sprintf("%.0f", te), fmt.Sprintf("%.0f", me),
			fmtF(r10), fmtF(r25), fmtF(r50))
	}
	t.AddRow("geomean", "", "", "", fmtF(geomean(ratios)), "")
	t.Note("paper: Triage's metadata accesses are 4-22x more energy efficient than MISB's")
	return t
}

// Fig20 sweeps the prefetch degree (paper Fig. 20: Triage grows to
// ~36% at degree 8 then saturates; BO's accuracy collapses).
func (r *Runner) Fig20() *Table {
	degrees := []int{1, 2, 4, 8, 16}
	t := &Table{ID: "fig20", Title: "Sensitivity to prefetch degree (irregular SPEC averages)"}
	t.Header = []string{"degree", "BO spd", "SMS spd", "Triage spd", "BO acc", "SMS acc", "Triage acc"}
	suite := workload.IrregularSuite()
	basesF := make([]*Future[sim.Result], len(suite))
	cellFs := make([][][]*Future[sim.Result], len(degrees)) // [degree][spec][config]
	for si, spec := range suite {
		basesF[si] = r.singleF(spec, cfgNone)
	}
	for di, d := range degrees {
		d := d
		mk := func(base pfFactory) pfFactory {
			return func(m config.Machine) prefetch.Prefetcher {
				p := base(m)
				if ds, ok := p.(prefetch.DegreeSetter); ok {
					ds.SetDegree(d)
				}
				return p
			}
		}
		configs := []namedPF{
			{fmt.Sprintf("BO-d%d", d), mk(pfBO)},
			{fmt.Sprintf("SMS-d%d", d), mk(pfSMS)},
			{fmt.Sprintf("Triage-d%d", d), mk(pfTriageStatic(1 << 20))},
		}
		cellFs[di] = make([][]*Future[sim.Result], len(suite))
		for si, spec := range suite {
			cellFs[di][si] = make([]*Future[sim.Result], len(configs))
			for ci, cfg := range configs {
				cellFs[di][si][ci] = r.singleF(spec, cfg)
			}
		}
	}
	for di, d := range degrees {
		var sp [3][]float64
		var acc [3][]float64
		for si := range suite {
			base := basesF[si].Wait()
			for i := 0; i < 3; i++ {
				res := cellFs[di][si][i].Wait()
				sp[i] = append(sp[i], res.SpeedupOver(base))
				acc[i] = append(acc[i], res.Accuracy())
			}
		}
		t.AddRow(fmt.Sprintf("%d", d),
			fmtSpeedup(geomean(sp[0])), fmtSpeedup(geomean(sp[1])), fmtSpeedup(geomean(sp[2])),
			fmtPct(mean(acc[0])*100), fmtPct(mean(acc[1])*100), fmtPct(mean(acc[2])*100))
	}
	t.Note("shape target: Triage speedup grows with degree and saturates ~8; Triage accuracy stays well above BO")
	return t
}

// SensEpoch varies the partition re-evaluation period (paper §4.6:
// performance is insensitive to epochs below 50K metadata accesses).
func (r *Runner) SensEpoch() *Table {
	epochs := []int{10_000, 25_000, 50_000, 100_000, 200_000}
	t := &Table{ID: "sens-epoch", Title: "Sensitivity to partition epoch length (Triage-Dynamic)"}
	t.Header = []string{"epoch (metadata accesses)", "speedup"}
	suite := workload.IrregularSuite()
	baseFs := make([]*Future[sim.Result], len(suite))
	cellFs := make([][]*Future[sim.Result], len(epochs))
	for si, spec := range suite {
		baseFs[si] = r.singleF(spec, cfgNone)
	}
	for ei, e := range epochs {
		e := e
		cellFs[ei] = make([]*Future[sim.Result], len(suite))
		for si, spec := range suite {
			cellFs[ei][si] = r.singleF(spec, namedPF{
				fmt.Sprintf("TriageDyn-e%d", e),
				func(m config.Machine) prefetch.Prefetcher {
					return core.New(core.Config{
						Mode: core.Dynamic, EpochAccesses: e, LLCLatencyTicks: llcTicks(m),
					})
				},
			})
		}
	}
	for ei, e := range epochs {
		var sps []float64
		for si := range suite {
			sps = append(sps, cellFs[ei][si].Wait().SpeedupOver(baseFs[si].Wait()))
		}
		t.AddRow(fmt.Sprintf("%d", e), fmtSpeedup(geomean(sps)))
	}
	t.Note("shape target: flat across epoch lengths")
	return t
}

// SensLatency penalizes LLC latency by up to 6 extra cycles for both
// data and metadata (paper §4.6: ~1% performance loss at +6 cycles).
func (r *Runner) SensLatency() *Table {
	t := &Table{ID: "sens-latency", Title: "Sensitivity to extra LLC latency (Triage_1MB)"}
	t.Header = []string{"extra cycles", "speedup over unpenalized NoL2PF"}
	extras := []int{0, 2, 4, 6}
	suite := workload.IrregularSuite()
	baseFs := make([]*Future[sim.Result], len(suite))
	cellFs := make([][]*Future[sim.Result], len(extras))
	for si, spec := range suite {
		baseFs[si] = r.singleF(spec, cfgNone) // unpenalized baseline
	}
	for xi, extra := range extras {
		extra := extra
		cellFs[xi] = make([]*Future[sim.Result], len(suite))
		for si, spec := range suite {
			cellFs[xi][si] = r.runSingleF(spec, pfTriageStatic(1<<20), func(o *sim.Options) {
				o.Machine.LLCExtraLatency = extra
			})
		}
	}
	for xi, extra := range extras {
		var sps []float64
		for si := range suite {
			sps = append(sps, cellFs[xi][si].Wait().SpeedupOver(baseFs[si].Wait()))
		}
		t.AddRow(fmt.Sprintf("+%d", extra), fmtSpeedup(geomean(sps)))
	}
	t.Note("shape target: small monotone loss, ~1%% at +6 cycles")
	return t
}
