package experiments

import (
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Runner executes figures, caching single-core runs so that baselines
// shared between figures (e.g. the no-prefetch runs used by Figs. 5, 6,
// 7, 10, 11, 12) are simulated once.
type Runner struct {
	P     Params
	cache map[string]sim.Result
}

// NewRunner returns a Runner with the given parameters.
func NewRunner(p Params) *Runner {
	return &Runner{P: p, cache: make(map[string]sim.Result)}
}

// namedPF pairs a display name with a prefetcher factory.
type namedPF struct {
	name string
	f    pfFactory
}

// single runs (and caches) one benchmark x prefetcher configuration.
func (r *Runner) single(spec workload.Spec, cfg namedPF) sim.Result {
	key := spec.Name + "/" + cfg.name
	if res, ok := r.cache[key]; ok {
		return res
	}
	res := runSingle(r.P, spec, cfg.f, nil)
	r.cache[key] = res
	return res
}

var (
	cfgNone      = namedPF{"NoL2PF", pfNone}
	cfgBO        = namedPF{"BO", pfBO}
	cfgSMS       = namedPF{"SMS", pfSMS}
	cfgT512      = namedPF{"Triage_512KB", pfTriageStatic(512 << 10)}
	cfgT1M       = namedPF{"Triage_1MB", pfTriageStatic(1 << 20)}
	cfgTDyn      = namedPF{"Triage_Dynamic", pfTriageDyn}
	cfgSTMS      = namedPF{"STMS", pfSTMS}
	cfgDomino    = namedPF{"Domino", pfDomino}
	cfgMISB      = namedPF{"MISB_48KB", pfMISB}
	cfgBOTDyn    = namedPF{"BO+Triage_Dyn", pfHybrid(pfTriageDyn, pfBO)} // accurate component first: its requests win queue slots
	cfgBOSMS     = namedPF{"BO+SMS", pfHybrid(pfBO, pfSMS)}
	cfgTUnl      = namedPF{"Triage_Unlimited", pfTriageUnlimited}
	cfgBOTStatic = namedPF{"BO+Triage_Static", pfHybrid(pfTriageStatic(1<<20), pfBO)}
)

// Fig01 reproduces the metadata reuse distribution (Fig. 1): an
// unlimited-metadata Triage on the mcf-like workload, reporting the
// reuse-count distribution over metadata entries.
func (r *Runner) Fig01() *Table {
	spec, _ := workload.ByName("mcf")
	var captured *core.Triage
	factory := func(m config.Machine) prefetch.Prefetcher {
		captured = core.New(core.Config{Mode: core.Unlimited, LLCLatencyTicks: llcTicks(m)})
		return captured
	}
	runSingle(r.P, spec, factory, nil)
	counts := captured.ReuseCounts()
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })

	t := &Table{
		ID:     "fig01",
		Title:  "Metadata reuse distribution (mcf): reuse count by entry-rank percentile",
		Header: []string{"entry percentile", "reuse count"},
	}
	if len(counts) == 0 {
		t.Note("no metadata entries recorded")
		return t
	}
	for _, pct := range []int{0, 1, 2, 5, 10, 15, 25, 50, 75, 90, 100} {
		idx := pct * (len(counts) - 1) / 100
		t.AddRow(fmt.Sprintf("top %d%%", pct), fmt.Sprintf("%d", counts[idx]))
	}
	over15 := 0
	for _, c := range counts {
		if c > 15 {
			over15++
		}
	}
	frac := float64(over15) / float64(len(counts))
	t.AddRow("entries", fmt.Sprintf("%d total", len(counts)))
	t.Note("%.1f%% of %d entries are reused more than 15 times (paper: ~15%% of 60K)",
		frac*100, len(counts))
	t.Note("shape target: reuse is heavily skewed toward a small fraction of entries")
	return t
}

// speedupTable runs suite x configs and reports per-benchmark speedups
// over the no-prefetch baseline, with a geometric-mean summary row.
func (r *Runner) speedupTable(id, title string, suite []workload.Spec, configs []namedPF) *Table {
	t := &Table{ID: id, Title: title}
	t.Header = append([]string{"benchmark"}, names(configs)...)
	means := make([][]float64, len(configs))
	for _, spec := range suite {
		base := r.single(spec, cfgNone)
		row := []string{spec.Name}
		for i, cfg := range configs {
			res := r.single(spec, cfg)
			sp := res.SpeedupOver(base)
			means[i] = append(means[i], sp)
			row = append(row, fmtSpeedup(sp))
		}
		t.AddRow(row...)
	}
	sumRow := []string{"geomean"}
	for i := range configs {
		sumRow = append(sumRow, fmtSpeedup(geomean(means[i])))
	}
	t.AddRow(sumRow...)
	return t
}

func names(cfgs []namedPF) []string {
	out := make([]string, len(cfgs))
	for i, c := range cfgs {
		out[i] = c.name
	}
	return out
}

// Fig05 compares Triage against the on-chip prefetchers BO and SMS on
// the irregular SPEC subset (paper: 23.5% vs 5.8% vs 2.2%).
func (r *Runner) Fig05() *Table {
	t := r.speedupTable("fig05",
		"Speedup over NoL2PF, irregular SPEC (Triage vs on-chip prefetchers)",
		workload.IrregularSuite(),
		[]namedPF{cfgBO, cfgSMS, cfgT512, cfgT1M, cfgTDyn})
	t.Note("shape target: Triage variants >> BO > SMS; Triage_Dynamic >= Triage_1MB")
	return t
}

// Fig06 reports prefetcher coverage and accuracy on the irregular
// subset (paper: Triage 42.0%/77.2%, BO 13.0%/43.3%, SMS 4.6%/39.6%).
func (r *Runner) Fig06() *Table {
	configs := []namedPF{cfgBO, cfgSMS, cfgT512, cfgT1M, cfgTDyn}
	t := &Table{ID: "fig06", Title: "Prefetcher coverage / accuracy, irregular SPEC"}
	t.Header = append([]string{"benchmark"}, names(configs)...)
	covSums := make([][]float64, len(configs))
	accSums := make([][]float64, len(configs))
	for _, spec := range workload.IrregularSuite() {
		base := r.single(spec, cfgNone)
		row := []string{spec.Name}
		for i, cfg := range configs {
			res := r.single(spec, cfg)
			cov, acc := res.CoverageOver(base), res.Accuracy()
			covSums[i] = append(covSums[i], cov)
			accSums[i] = append(accSums[i], acc)
			row = append(row, fmt.Sprintf("%.0f%%/%.0f%%", cov*100, acc*100))
		}
		t.AddRow(row...)
	}
	row := []string{"average"}
	for i := range configs {
		row = append(row, fmt.Sprintf("%.0f%%/%.0f%%", mean(covSums[i])*100, mean(accSums[i])*100))
	}
	t.AddRow(row...)
	t.Note("cells are coverage/accuracy; shape target: Triage highest on both")
	return t
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// Fig07 breaks down Triage's gain vs the LLC capacity it consumes:
// an optimistic Triage with a free 1MB store, a 1MB-LLC machine with no
// prefetching, and real Triage (1MB LLC data + 1MB metadata).
func (r *Runner) Fig07() *Table {
	t := &Table{
		ID:     "fig07",
		Title:  "Breakdown of Triage's improvement vs capacity loss (speedup over 2MB LLC, NoL2PF)",
		Header: []string{"benchmark", "2MB LLC + 1MB Triage (free)", "1MB LLC, NoL2PF", "1MB LLC + 1MB Triage"},
	}
	var free, shrunk, real []float64
	for _, spec := range workload.IrregularSuite() {
		base := r.single(spec, cfgNone)
		// Optimistic: metadata store does not consume LLC capacity.
		optRes := runSingle(r.P, spec, pfTriageStatic(1<<20), func(o *sim.Options) {
			o.NoCapacityLoss = true
		})
		// Capacity loss alone: half-size LLC, no prefetching.
		smallRes := runSingle(r.P, spec, pfNone, func(o *sim.Options) {
			o.Machine.LLCBytesPerCore = 1 << 20
		})
		// Real Triage on the normal machine.
		realRes := r.single(spec, cfgT1M)
		f := optRes.SpeedupOver(base)
		s := smallRes.SpeedupOver(base)
		re := realRes.SpeedupOver(base)
		free = append(free, f)
		shrunk = append(shrunk, s)
		real = append(real, re)
		t.AddRow(spec.Name, fmtSpeedup(f), fmtSpeedup(s), fmtSpeedup(re))
	}
	t.AddRow("geomean", fmtSpeedup(geomean(free)), fmtSpeedup(geomean(shrunk)), fmtSpeedup(geomean(real)))
	t.Note("paper: +31.2%% free-store gain, -7.4%% capacity loss, +23.4%% net")
	t.Note("shape target: prefetching gain far exceeds the capacity penalty")
	return t
}

// Fig08 runs the regular SPEC subset (paper: BO wins, Triage-Dynamic
// avoids harm except slight loss on bzip2-like capacity-bound loops).
func (r *Runner) Fig08() *Table {
	t := r.speedupTable("fig08",
		"Speedup over NoL2PF, regular SPEC subset",
		workload.RegularSuite(),
		[]namedPF{cfgBO, cfgSMS, cfgT512, cfgT1M, cfgTDyn})
	t.Note("shape target: BO >= Triage on regular codes; Triage_Dynamic ~1.0 (no harm)")
	return t
}

// Fig09 sweeps the metadata store size and replacement policy assuming
// no LLC capacity loss (paper Fig. 9: Hawkeye >> LRU at small sizes;
// both approach the unlimited 'Perfect' prefetcher by 1MB).
func (r *Runner) Fig09() *Table {
	sizes := []int{128 << 10, 256 << 10, 512 << 10, 1 << 20}
	t := &Table{ID: "fig09", Title: "Sensitivity to metadata store size (no LLC capacity loss)"}
	t.Header = []string{"store size", "LRU", "Hawkeye"}
	suite := workload.IrregularSuite()
	baseOf := func(spec workload.Spec) sim.Result { return r.single(spec, cfgNone) }
	for _, size := range sizes {
		var lru, hawk []float64
		for _, spec := range suite {
			base := baseOf(spec)
			for _, pol := range []core.Replacement{core.LRU, core.Hawkeye} {
				pol := pol
				res := runSingle(r.P, spec, func(m config.Machine) prefetch.Prefetcher {
					return core.New(core.Config{
						Mode: core.Static, StaticBytes: size,
						Replacement: pol, LLCLatencyTicks: llcTicks(m),
					})
				}, func(o *sim.Options) { o.NoCapacityLoss = true })
				if pol == core.LRU {
					lru = append(lru, res.SpeedupOver(base))
				} else {
					hawk = append(hawk, res.SpeedupOver(base))
				}
			}
		}
		t.AddRow(fmt.Sprintf("%dKB", size>>10), fmtSpeedup(geomean(lru)), fmtSpeedup(geomean(hawk)))
	}
	var perfect []float64
	for _, spec := range suite {
		res := r.single(spec, cfgTUnl)
		perfect = append(perfect, res.SpeedupOver(baseOf(spec)))
	}
	t.AddRow("unlimited (Perfect)", "-", fmtSpeedup(geomean(perfect)))
	t.Note("paper: 256KB LRU 7.7%% vs Hawkeye 13.7%%; gap shrinks at 1MB; 1MB ~ 75%% of Perfect")
	return t
}

// Fig10 evaluates the BO+Triage hybrid on the irregular subset
// (paper: 24.8% for BO+Triage vs 5.8% for BO alone).
func (r *Runner) Fig10() *Table {
	t := r.speedupTable("fig10",
		"Hybrid prefetching, irregular SPEC",
		workload.IrregularSuite(),
		[]namedPF{cfgBO, cfgTDyn, cfgBOTDyn})
	t.Note("shape target: BO+Triage >= max(BO, Triage) per benchmark")
	return t
}

// Fig11 compares Triage with the off-chip temporal prefetchers: speedup
// (top of Fig. 11) and off-chip traffic relative to NoL2PF (bottom).
func (r *Runner) Fig11() *Table {
	configs := []namedPF{cfgSTMS, cfgDomino, cfgMISB, cfgT1M}
	t := &Table{ID: "fig11", Title: "Off-chip temporal prefetchers: speedup and relative traffic"}
	t.Header = []string{"benchmark"}
	for _, c := range configs {
		t.Header = append(t.Header, c.name+" spd", c.name+" traf")
	}
	spSums := make([][]float64, len(configs))
	trSums := make([][]float64, len(configs))
	for _, spec := range workload.IrregularSuite() {
		base := r.single(spec, cfgNone)
		row := []string{spec.Name}
		for i, cfg := range configs {
			res := r.single(spec, cfg)
			sp := res.SpeedupOver(base)
			tr := 1.0
			if bt := base.TotalTraffic(); bt > 0 {
				tr = float64(res.TotalTraffic()+res.EstimatedMetadataTransfers) / float64(bt)
			}
			spSums[i] = append(spSums[i], sp)
			trSums[i] = append(trSums[i], tr)
			row = append(row, fmtSpeedup(sp), fmtF(tr))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean"}
	for i := range configs {
		row = append(row, fmtSpeedup(geomean(spSums[i])), fmtF(geomean(trSums[i])))
	}
	t.AddRow(row...)
	t.Note("traffic is relative to NoL2PF (1.00 = no overhead); paper overheads: STMS 4.8x, Domino 4.8x, MISB 2.6x, Triage 1.6x")
	t.Note("shape target: MISB > Triage > STMS~Domino on speedup; Triage lowest traffic")
	return t
}

// Fig12 summarizes the design space: average speedup vs average traffic
// overhead per prefetcher (the scatter of Fig. 12).
func (r *Runner) Fig12() *Table {
	configs := []namedPF{cfgBO, cfgSTMS, cfgDomino, cfgMISB, cfgT1M, cfgTDyn}
	t := &Table{
		ID:     "fig12",
		Title:  "Design space: speedup vs off-chip traffic overhead (irregular SPEC averages)",
		Header: []string{"prefetcher", "speedup", "traffic overhead"},
	}
	for _, cfg := range configs {
		var sps, trs []float64
		for _, spec := range workload.IrregularSuite() {
			base := r.single(spec, cfgNone)
			res := r.single(spec, cfg)
			sps = append(sps, res.SpeedupOver(base))
			bt := float64(base.TotalTraffic())
			over := 0.0
			if bt > 0 {
				over = 100 * (float64(res.TotalTraffic()+res.EstimatedMetadataTransfers) - bt) / bt
			}
			trs = append(trs, over)
		}
		t.AddRow(cfg.name, fmtSpeedup(geomean(sps)), fmtPct(mean(trs)))
	}
	t.Note("shape target: Triage dominates STMS/Domino; MISB fastest but with much higher traffic")
	return t
}

// Fig13 estimates metadata-access energy: Triage pays 1 unit per LLC
// metadata access; MISB pays 25 [10, 50] units per off-chip metadata
// access (paper's model).
func (r *Runner) Fig13() *Table {
	t := &Table{
		ID:     "fig13",
		Title:  "Energy overhead of MISB's metadata accesses over Triage (x)",
		Header: []string{"benchmark", "Triage accesses", "MISB accesses", "ratio @10", "ratio @25", "ratio @50"},
	}
	var ratios []float64
	for _, spec := range workload.IrregularSuite() {
		tri := r.single(spec, cfgT1M)
		mi := r.single(spec, cfgMISB)
		te := float64(tri.TriageLLCMetadataAccesses)
		me := float64(mi.MISBOffChipMetadataAccesses)
		if te == 0 {
			te = 1
		}
		r10, r25, r50 := me*10/te, me*25/te, me*50/te
		ratios = append(ratios, r25)
		t.AddRow(spec.Name,
			fmt.Sprintf("%.0f", te), fmt.Sprintf("%.0f", me),
			fmtF(r10), fmtF(r25), fmtF(r50))
	}
	t.AddRow("geomean", "", "", "", fmtF(geomean(ratios)), "")
	t.Note("paper: Triage's metadata accesses are 4-22x more energy efficient than MISB's")
	return t
}

// Fig20 sweeps the prefetch degree (paper Fig. 20: Triage grows to
// ~36% at degree 8 then saturates; BO's accuracy collapses).
func (r *Runner) Fig20() *Table {
	degrees := []int{1, 2, 4, 8, 16}
	t := &Table{ID: "fig20", Title: "Sensitivity to prefetch degree (irregular SPEC averages)"}
	t.Header = []string{"degree", "BO spd", "SMS spd", "Triage spd", "BO acc", "SMS acc", "Triage acc"}
	for _, d := range degrees {
		d := d
		mk := func(base pfFactory) pfFactory {
			return func(m config.Machine) prefetch.Prefetcher {
				p := base(m)
				if ds, ok := p.(prefetch.DegreeSetter); ok {
					ds.SetDegree(d)
				}
				return p
			}
		}
		configs := []namedPF{
			{fmt.Sprintf("BO-d%d", d), mk(pfBO)},
			{fmt.Sprintf("SMS-d%d", d), mk(pfSMS)},
			{fmt.Sprintf("Triage-d%d", d), mk(pfTriageStatic(1 << 20))},
		}
		var sp [3][]float64
		var acc [3][]float64
		for _, spec := range workload.IrregularSuite() {
			base := r.single(spec, cfgNone)
			for i, cfg := range configs {
				res := r.single(spec, cfg)
				sp[i] = append(sp[i], res.SpeedupOver(base))
				acc[i] = append(acc[i], res.Accuracy())
			}
		}
		t.AddRow(fmt.Sprintf("%d", d),
			fmtSpeedup(geomean(sp[0])), fmtSpeedup(geomean(sp[1])), fmtSpeedup(geomean(sp[2])),
			fmtPct(mean(acc[0])*100), fmtPct(mean(acc[1])*100), fmtPct(mean(acc[2])*100))
	}
	t.Note("shape target: Triage speedup grows with degree and saturates ~8; Triage accuracy stays well above BO")
	return t
}

// SensEpoch varies the partition re-evaluation period (paper §4.6:
// performance is insensitive to epochs below 50K metadata accesses).
func (r *Runner) SensEpoch() *Table {
	epochs := []int{10_000, 25_000, 50_000, 100_000, 200_000}
	t := &Table{ID: "sens-epoch", Title: "Sensitivity to partition epoch length (Triage-Dynamic)"}
	t.Header = []string{"epoch (metadata accesses)", "speedup"}
	for _, e := range epochs {
		e := e
		var sps []float64
		for _, spec := range workload.IrregularSuite() {
			base := r.single(spec, cfgNone)
			res := r.single(spec, namedPF{
				fmt.Sprintf("TriageDyn-e%d", e),
				func(m config.Machine) prefetch.Prefetcher {
					return core.New(core.Config{
						Mode: core.Dynamic, EpochAccesses: e, LLCLatencyTicks: llcTicks(m),
					})
				},
			})
			sps = append(sps, res.SpeedupOver(base))
		}
		t.AddRow(fmt.Sprintf("%d", e), fmtSpeedup(geomean(sps)))
	}
	t.Note("shape target: flat across epoch lengths")
	return t
}

// SensLatency penalizes LLC latency by up to 6 extra cycles for both
// data and metadata (paper §4.6: ~1% performance loss at +6 cycles).
func (r *Runner) SensLatency() *Table {
	t := &Table{ID: "sens-latency", Title: "Sensitivity to extra LLC latency (Triage_1MB)"}
	t.Header = []string{"extra cycles", "speedup over unpenalized NoL2PF"}
	for _, extra := range []int{0, 2, 4, 6} {
		extra := extra
		var sps []float64
		for _, spec := range workload.IrregularSuite() {
			base := r.single(spec, cfgNone) // unpenalized baseline
			res := runSingle(r.P, spec, pfTriageStatic(1<<20), func(o *sim.Options) {
				o.Machine.LLCExtraLatency = extra
			})
			sps = append(sps, res.SpeedupOver(base))
		}
		t.AddRow(fmt.Sprintf("+%d", extra), fmtSpeedup(geomean(sps)))
	}
	t.Note("shape target: small monotone loss, ~1%% at +6 cycles")
	return t
}
