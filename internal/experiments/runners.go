package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/prefetch/bo"
	"repro/internal/prefetch/domino"
	"repro/internal/prefetch/hybrid"
	"repro/internal/prefetch/misb"
	"repro/internal/prefetch/sms"
	"repro/internal/prefetch/stms"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Params controls experiment scale. The defaults trade fidelity for
// wall-clock time; pass larger windows (cmd/experiments -full) to
// tighten the numbers.
type Params struct {
	// Warmup and Measure are per-core instruction counts for
	// single-core runs.
	Warmup  uint64
	Measure uint64
	// MultiWarmup/MultiMeasure are the per-core counts for
	// multi-programmed runs (kept smaller: N cores multiply the work).
	MultiWarmup  uint64
	MultiMeasure uint64
	// Mixes is the number of multi-programmed mixes per experiment
	// (the paper uses 30 irregular + 50 mixed; scale down for speed).
	Mixes int
	// Seed drives mix construction and generator schedules.
	Seed uint64
	// SampleEvery, when non-zero, attaches a telemetry sampler at this
	// retired-instruction interval to every run; cached single-core
	// runs keep their JSONL series retrievable via Runner.SampleSeries.
	SampleEvery uint64
	// Deadline, when non-zero, bounds each run's wall-clock time; a run
	// that exceeds it is aborted cooperatively and its cell fails with
	// an "aborted" RunError instead of hanging the pool.
	Deadline time.Duration
	// StallTimeout, when non-zero, aborts a run whose retired-
	// instruction count stops advancing for this long (a wedged
	// simulation on an otherwise healthy pool).
	StallTimeout time.Duration
	// Retries is how many extra attempts a transiently failed run gets
	// (total attempts = Retries + 1). Only failures injected through
	// FaultHook are transient; panics and watchdog aborts are
	// deterministic and never retried.
	Retries int
	// CheckEvery, when non-zero, enables the simulator's structural
	// invariant sweep at this stepped-instruction interval (debug mode;
	// see sim.Options.CheckEvery).
	CheckEvery uint64
	// FaultHook, when non-nil, is consulted before every run attempt
	// with the run's cache key and 1-based attempt number; a non-nil
	// error fails that attempt as a retryable transient fault. Test
	// hook for the retry machinery — leave nil in production.
	FaultHook func(key string, attempt int) error
}

// DefaultParams returns the quick configuration.
func DefaultParams() Params {
	return Params{
		Warmup:       4_000_000,
		Measure:      4_000_000,
		MultiWarmup:  2_000_000,
		MultiMeasure: 1_500_000,
		Mixes:        8,
		Seed:         42,
	}
}

// FullParams returns the paper-scale configuration (slower).
func FullParams() Params {
	return Params{
		Warmup:       10_000_000,
		Measure:      8_000_000,
		MultiWarmup:  3_000_000,
		MultiMeasure: 2_000_000,
		Mixes:        30,
		Seed:         42,
	}
}

// pfFactory builds a fresh prefetcher for one core of machine m.
// Fresh instances per run keep state isolated.
type pfFactory func(m config.Machine) prefetch.Prefetcher

func llcTicks(m config.Machine) uint64 {
	return uint64(m.LLCLatency+m.LLCExtraLatency) * dram.TicksPerCycle
}

// The named prefetcher configurations used across figures.
func pfNone(config.Machine) prefetch.Prefetcher { return nil }

func pfBO(config.Machine) prefetch.Prefetcher { return bo.New() }

func pfSMS(config.Machine) prefetch.Prefetcher { return sms.New() }

func pfSTMS(config.Machine) prefetch.Prefetcher { return stms.New() }

func pfDomino(config.Machine) prefetch.Prefetcher { return domino.New() }

func pfMISB(config.Machine) prefetch.Prefetcher { return misb.New() }

func pfTriageStatic(bytes int) pfFactory {
	return func(m config.Machine) prefetch.Prefetcher {
		return core.New(core.Config{
			Mode: core.Static, StaticBytes: bytes, LLCLatencyTicks: llcTicks(m),
		})
	}
}

func pfTriageDyn(m config.Machine) prefetch.Prefetcher {
	return core.New(core.Config{Mode: core.Dynamic, LLCLatencyTicks: llcTicks(m)})
}

func pfTriageUnlimited(m config.Machine) prefetch.Prefetcher {
	return core.New(core.Config{Mode: core.Unlimited, LLCLatencyTicks: llcTicks(m)})
}

func pfHybrid(a, b pfFactory) pfFactory {
	return func(m config.Machine) prefetch.Prefetcher {
		return hybrid.New(a(m), b(m))
	}
}

// warmKey names a run's complete warm prefix for the simulator's
// process-wide snapshot cache: workload construction (benchmark name +
// seed), prefetcher configuration name, core count, and warmup window.
// pfName must uniquely identify the prefetcher configuration within
// the process (namedPF names satisfy this — see namedPF); the
// simulator independently re-checks the machine-shape half of the key
// (sim.Options.WarmKey), so a collision degrades to a cold warmup
// only when it is safe to reuse and to a refused restore otherwise.
func warmKey(kind, bench, pfName string, cores int, warm, seed uint64) string {
	return fmt.Sprintf("%s/%s/%s/x%d/w%d/s%d", kind, bench, pfName, cores, warm, seed)
}

// runSingle simulates one benchmark on a single-core Table 1 machine.
// pfName, when non-empty, enables warm-state snapshot reuse for this
// cell (mutated machines pass "" — their warm prefix has no stable
// name).
func runSingle(p Params, spec workload.Spec, pfName string, factory pfFactory, mutate func(*sim.Options), tel *telemetry.Hooks) sim.Result {
	m := config.Default(1)
	opts := sim.Options{
		Machine:             m,
		Workloads:           []trace.Reader{spec.New(p.Seed, 0)},
		Prefetchers:         []prefetch.Prefetcher{factory(m)},
		WarmupInstructions:  p.Warmup,
		MeasureInstructions: p.Measure,
		Telemetry:           tel,
		CheckEvery:          p.CheckEvery,
	}
	if pfName != "" {
		opts.WarmKey = warmKey("fig", spec.Name, pfName, 1, p.Warmup, p.Seed)
	}
	if mutate != nil {
		mutate(&opts)
		opts.WarmKey = ""
		opts.Workloads = []trace.Reader{spec.New(p.Seed, 0)}
		opts.Prefetchers = []prefetch.Prefetcher{factory(opts.Machine)}
	}
	machine, err := sim.New(opts)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", spec.Name, err))
	}
	return machine.Run()
}

// runMix simulates a multi-programmed mix on an N-core machine, one
// benchmark and one prefetcher instance per core. pfName enables
// warm-state reuse as in runSingle. Mix display names are NOT unique
// across figures (every mix figure numbers its mixes "mix1"..), so
// the warm key spells out the benchmark composition: two cells share
// a key only when they run the same programs on the same cores.
func runMix(p Params, mix workload.MixSpec, pfName string, factory pfFactory, tel *telemetry.Hooks) sim.Result {
	cores := len(mix.Specs)
	m := config.Default(cores)
	ws := make([]trace.Reader, cores)
	pfs := make([]prefetch.Prefetcher, cores)
	for c, spec := range mix.Specs {
		ws[c] = spec.New(p.Seed+uint64(c)*7919, mem.Addr(c+1)<<40)
		pfs[c] = factory(m)
	}
	opts := sim.Options{
		Machine:             m,
		Workloads:           ws,
		Prefetchers:         pfs,
		WarmupInstructions:  p.MultiWarmup,
		MeasureInstructions: p.MultiMeasure,
		Telemetry:           tel,
		CheckEvery:          p.CheckEvery,
	}
	if pfName != "" {
		comp := make([]string, cores)
		for c, spec := range mix.Specs {
			comp[c] = spec.Name
		}
		opts.WarmKey = warmKey("mix", strings.Join(comp, "+"), pfName, cores, p.MultiWarmup, p.Seed)
	}
	machine, err := sim.New(opts)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", mix.Name, err))
	}
	return machine.Run()
}

// runRate simulates N copies of one benchmark on an N-core machine
// (the CloudSuite server setup). pfName enables warm-state reuse.
func runRate(p Params, spec workload.Spec, cores int, pfName string, factory pfFactory, tel *telemetry.Hooks) sim.Result {
	m := config.Default(cores)
	ws := make([]trace.Reader, cores)
	pfs := make([]prefetch.Prefetcher, cores)
	for c := 0; c < cores; c++ {
		ws[c] = spec.New(p.Seed+uint64(c)*104729, mem.Addr(c+1)<<40)
		pfs[c] = factory(m)
	}
	opts := sim.Options{
		Machine:             m,
		Workloads:           ws,
		Prefetchers:         pfs,
		WarmupInstructions:  p.MultiWarmup,
		MeasureInstructions: p.MultiMeasure,
		Telemetry:           tel,
		CheckEvery:          p.CheckEvery,
	}
	if pfName != "" {
		opts.WarmKey = warmKey("rate", spec.Name, pfName, cores, p.MultiWarmup, p.Seed)
	}
	machine, err := sim.New(opts)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s x%d: %v", spec.Name, cores, err))
	}
	return machine.Run()
}
