package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/sim"
)

// checkpointVersion is bumped whenever the record layout (or the
// meaning of sim.Result fields) changes; a store written by another
// version is refused rather than silently misread. Version 2 added the
// fingerprint header and blob records.
const checkpointVersion = 2

// checkpointFile is the store's single append-only log.
const checkpointFile = "runs.jsonl"

// checkpointHeader is the store's first line: the format version plus
// the configuration fingerprint every record in the store was
// simulated under. Folding the fingerprint into the store (instead of
// trusting the caller to reuse the same flags) is what makes a resumed
// run refuse — loudly — to restore results simulated under different
// machine parameters, workloads, or instruction windows.
type checkpointHeader struct {
	V  int    `json:"v"`
	FP string `json:"fp"`
}

// checkpointRecord is one completed run. sim.Result is plain exported
// numeric data, so JSON round-trips it exactly (uint64s parse exactly;
// float64 uses shortest-round-trip encoding) and a resumed sweep
// reproduces byte-identical tables. Blob records (the service's
// figure-table payloads) carry an opaque payload instead of a Result.
type checkpointRecord struct {
	V       int        `json:"v"`
	Key     string     `json:"key"`
	Result  sim.Result `json:"result"`
	Samples []byte     `json:"samples,omitempty"` // JSONL series, if sampled
	Blob    []byte     `json:"blob,omitempty"`    // opaque payload (blob records)
	IsBlob  bool       `json:"is_blob,omitempty"`
}

// Checkpoint is a versioned, fingerprinted on-disk store of completed
// runs, keyed like the single-flight cache ("bench/config"). Records
// are appended as complete JSONL lines after a header naming the
// configuration fingerprint; on open, a torn tail (from a kill mid-
// write) is truncated away so the next append cannot merge into it,
// and a store whose fingerprint does not match the caller's is refused
// with an error instead of silently restoring stale results.
type Checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	fp   string
	seen map[string]checkpointRecord
	err  error // first write error, reported at Close
}

// OpenCheckpoint opens (or creates) the store in dir, loading every
// complete record already present. fingerprint stamps a fresh store
// and is checked against an existing one: pass the output of
// Params.Fingerprint (or ConfigFingerprint) for the configuration
// whose results the store holds. A mismatch — the store was written
// under different machine parameters, workloads, or windows — is an
// error; delete the directory (or rerun with the original parameters)
// to proceed.
func OpenCheckpoint(dir, fingerprint string) (*Checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, checkpointFile)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	c := &Checkpoint{fp: fingerprint, seen: make(map[string]checkpointRecord)}
	good := 0
	first := true
	for good < len(data) {
		nl := bytes.IndexByte(data[good:], '\n')
		if nl < 0 {
			break // torn tail: record never finished writing
		}
		line := data[good : good+nl]
		if first {
			var hdr checkpointHeader
			if json.Unmarshal(line, &hdr) != nil {
				break // torn/corrupt header: treat the store as empty
			}
			if hdr.V != checkpointVersion {
				return nil, fmt.Errorf("checkpoint %s: format version %d, this build writes %d (delete the directory to start over)",
					path, hdr.V, checkpointVersion)
			}
			if hdr.FP != fingerprint {
				return nil, fmt.Errorf("checkpoint %s holds results for a different configuration (fingerprint %.12s..., want %.12s...): it was written under different machine parameters, workloads, or instruction windows — delete the directory or rerun with the original parameters",
					path, hdr.FP, fingerprint)
			}
			first = false
			good += nl + 1
			continue
		}
		var rec checkpointRecord
		if json.Unmarshal(line, &rec) != nil {
			break // torn or corrupt: drop this and everything after
		}
		if rec.V != checkpointVersion {
			return nil, fmt.Errorf("checkpoint %s: record version %d, this build writes %d (delete the directory to start over)",
				path, rec.V, checkpointVersion)
		}
		c.seen[rec.Key] = rec
		good += nl + 1
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(good)); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	if good == 0 {
		hdr, err := json.Marshal(checkpointHeader{V: checkpointVersion, FP: fingerprint})
		if err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, err
		}
	}
	c.f = f
	return c, nil
}

// Fingerprint returns the configuration fingerprint the store was
// opened with.
func (c *Checkpoint) Fingerprint() string { return c.fp }

// Put appends one completed run. Duplicate keys are ignored (the
// single-flight cache already guarantees one simulation per key; a
// resumed run only writes keys it actually simulated). Write errors
// are latched and surfaced by Err/Close rather than failing the run —
// a broken checkpoint must not abort a healthy sweep.
func (c *Checkpoint) Put(key string, res sim.Result, samples []byte) {
	c.put(checkpointRecord{V: checkpointVersion, Key: key, Result: res, Samples: samples})
}

// PutBlob appends one opaque payload under key (the service's
// figure-table results). Blob and run records share the key space.
func (c *Checkpoint) PutBlob(key string, blob []byte) {
	c.put(checkpointRecord{V: checkpointVersion, Key: key, Blob: blob, IsBlob: true})
}

func (c *Checkpoint) put(rec checkpointRecord) {
	data, err := json.Marshal(rec)
	if err != nil {
		c.mu.Lock()
		if c.err == nil {
			c.err = err
		}
		c.mu.Unlock()
		return
	}
	data = append(data, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.seen[rec.Key]; ok {
		return
	}
	if c.f != nil {
		if _, err := c.f.Write(data); err != nil && c.err == nil {
			c.err = err
		}
	}
	c.seen[rec.Key] = rec
}

// Get returns the stored result for key, if present as a run record.
func (c *Checkpoint) Get(key string) (sim.Result, []byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.seen[key]
	if ok && rec.IsBlob {
		return sim.Result{}, nil, false
	}
	return rec.Result, rec.Samples, ok
}

// GetBlob returns the stored payload for key, if present as a blob
// record.
func (c *Checkpoint) GetBlob(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.seen[key]
	if !ok || !rec.IsBlob {
		return nil, false
	}
	return rec.Blob, true
}

// Has reports whether key is stored (run or blob record).
func (c *Checkpoint) Has(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.seen[key]
	return ok
}

// Len returns the number of stored runs.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.seen)
}

// Err returns the first write error, if any.
func (c *Checkpoint) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close flushes and closes the store, returning the first error seen.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f != nil {
		if err := c.f.Close(); err != nil && c.err == nil {
			c.err = err
		}
		c.f = nil
	}
	return c.err
}
