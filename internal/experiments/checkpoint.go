package experiments

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// checkpointVersion is bumped whenever the record layout (or the
// meaning of sim.Result fields) changes. Version 2 added the
// fingerprint header and blob records; version 3 frames every record
// with a CRC32 so corruption anywhere in the file — not just a torn
// tail — is detected and quarantined instead of silently served.
// Version-2 stores are still readable: they are upgraded to v3 in
// place (atomically) on open.
const (
	checkpointVersion   = 3
	checkpointVersionV2 = 2
)

// checkpointFile is the store's single append-only log;
// quarantineFile collects the raw bytes of any record that failed its
// integrity check, for forensics.
const (
	checkpointFile = "runs.jsonl"
	quarantineFile = "quarantine.jsonl"
)

// crcTable is the Castagnoli polynomial (hardware-accelerated on
// amd64/arm64), the standard choice for storage checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checkpointHeader is the store's first line: the format version plus
// the configuration fingerprint every record in the store was
// simulated under. Folding the fingerprint into the store (instead of
// trusting the caller to reuse the same flags) is what makes a resumed
// run refuse — loudly — to restore results simulated under different
// machine parameters, workloads, or instruction windows.
type checkpointHeader struct {
	V  int    `json:"v"`
	FP string `json:"fp"`
}

// checkpointRecord is one completed run. sim.Result is plain exported
// numeric data, so JSON round-trips it exactly (uint64s parse exactly;
// float64 uses shortest-round-trip encoding) and a resumed sweep
// reproduces byte-identical tables. Blob records (the service's
// figure-table payloads) carry an opaque payload instead of a Result.
type checkpointRecord struct {
	V       int        `json:"v"`
	Key     string     `json:"key"`
	Result  sim.Result `json:"result"`
	Samples []byte     `json:"samples,omitempty"` // JSONL series, if sampled
	Blob    []byte     `json:"blob,omitempty"`    // opaque payload (blob records)
	IsBlob  bool       `json:"is_blob,omitempty"`
}

// frameRecord renders one v3 line: 8 hex digits of CRC32-C over the
// JSON payload, a space, the payload, a newline. The checksum covers
// exactly the bytes a reader will parse, so any mid-file bit flip,
// overwrite, or merged line fails verification.
func frameRecord(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+10)
	var crc [4]byte
	sum := crc32.Checksum(payload, crcTable)
	crc[0], crc[1], crc[2], crc[3] = byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum)
	out = append(out, hex.EncodeToString(crc[:])...)
	out = append(out, ' ')
	out = append(out, payload...)
	out = append(out, '\n')
	return out
}

// unframeRecord verifies and strips a v3 frame, returning the JSON
// payload or an error describing why the line cannot be trusted.
func unframeRecord(line []byte) ([]byte, error) {
	if len(line) < 9 || line[8] != ' ' {
		return nil, errors.New("missing CRC frame")
	}
	var crc [4]byte
	if _, err := hex.Decode(crc[:], line[:8]); err != nil {
		return nil, errors.New("malformed CRC")
	}
	want := uint32(crc[0])<<24 | uint32(crc[1])<<16 | uint32(crc[2])<<8 | uint32(crc[3])
	payload := line[9:]
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("CRC mismatch (stored %08x, computed %08x)", want, got)
	}
	return payload, nil
}

// parsedStore is the outcome of scanning a store file: the surviving
// records in file order, the length of the clean prefix (for the
// truncate-only fast path), the raw bytes of quarantined lines, and
// whether the file must be rewritten (legacy format or mid-file
// corruption) rather than merely truncated.
type parsedStore struct {
	recs        []checkpointRecord
	good        int
	quarantined [][]byte
	rewrite     bool
}

// parseStore scans one store file. It is a pure function of its
// inputs (fuzzed directly in checkpoint_fuzz_test.go) and must never
// panic on arbitrary bytes. A version or fingerprint mismatch in an
// intact header is an error; corrupt records are quarantined, not
// fatal; a torn tail (no trailing newline) is dropped.
func parseStore(data []byte, fingerprint string) (parsedStore, error) {
	var p parsedStore
	legacy := false
	first := true
	for p.good < len(data) {
		nl := bytes.IndexByte(data[p.good:], '\n')
		if nl < 0 {
			// Torn tail: the record never finished writing. Quarantine the
			// fragment for forensics and stop.
			p.quarantined = append(p.quarantined, append([]byte(nil), data[p.good:]...))
			break
		}
		line := data[p.good : p.good+nl]
		if first {
			var hdr checkpointHeader
			if json.Unmarshal(line, &hdr) != nil {
				if p.good+nl+1 >= len(data) {
					// A lone corrupt header is a crash during store creation:
					// nothing can have been acknowledged, start over.
					p.quarantined = append(p.quarantined, append([]byte(nil), line...))
					p.good = 0
					p.rewrite = true
					return p, nil
				}
				return p, fmt.Errorf("checkpoint header is corrupt but records follow; refusing to guess (quarantine or delete the store)")
			}
			switch hdr.V {
			case checkpointVersion:
			case checkpointVersionV2:
				legacy = true
				p.rewrite = true // upgrade to v3 framing on open
			default:
				return p, fmt.Errorf("checkpoint format version %d, this build writes %d (delete the directory to start over)",
					hdr.V, checkpointVersion)
			}
			if hdr.FP != fingerprint {
				return p, fmt.Errorf("checkpoint holds results for a different configuration (fingerprint %.12s..., want %.12s...): it was written under different machine parameters, workloads, or instruction windows — delete the directory or rerun with the original parameters",
					hdr.FP, fingerprint)
			}
			first = false
			p.good += nl + 1
			continue
		}
		payload := line
		wantV := checkpointVersionV2
		if !legacy {
			wantV = checkpointVersion
			var err error
			if payload, err = unframeRecord(line); err != nil {
				p.quarantined = append(p.quarantined, append([]byte(nil), line...))
				p.rewrite = true
				p.good += nl + 1
				continue
			}
		}
		var rec checkpointRecord
		if json.Unmarshal(payload, &rec) != nil || rec.V != wantV || rec.Key == "" {
			p.quarantined = append(p.quarantined, append([]byte(nil), line...))
			p.rewrite = true
			p.good += nl + 1
			continue
		}
		rec.V = checkpointVersion
		p.recs = append(p.recs, rec)
		p.good += nl + 1
	}
	return p, nil
}

// Checkpoint is a versioned, fingerprinted, checksummed on-disk store
// of completed runs, keyed like the single-flight cache
// ("bench/config"). Records are appended as CRC32-framed JSONL lines
// after a header naming the configuration fingerprint, and every
// append is fsynced before it is acknowledged. On open, a torn tail
// (from a kill mid-write) is truncated away, a mid-file record that
// fails its checksum is quarantined to quarantine.jsonl (and the
// store compacted) rather than served, and a store whose fingerprint
// does not match the caller's is refused with an error instead of
// silently restoring stale results.
type Checkpoint struct {
	mu          sync.Mutex
	fsys        vfs.FS
	dir         string
	f           vfs.File
	fp          string
	seen        map[string]checkpointRecord
	quarantined int
	err         error // first write error, reported at Close
	// off is the end offset of the last durable record; dirty marks a
	// failed append that may have left torn bytes past off. The next
	// append first truncates back to off, so a retried Put can never
	// glue its record onto a torn prefix (which would corrupt the
	// *retried* — acknowledged! — record on the next open).
	off   int64
	dirty bool
}

// OpenCheckpoint opens (or creates) the store in dir on the real
// filesystem. See OpenCheckpointFS.
func OpenCheckpoint(dir, fingerprint string) (*Checkpoint, error) {
	return OpenCheckpointFS(vfs.OS{}, dir, fingerprint)
}

// OpenCheckpointFS opens (or creates) the store in dir on fsys,
// loading every record that passes its integrity check. fingerprint
// stamps a fresh store and is checked against an existing one: pass
// the output of Params.Fingerprint (or ConfigFingerprint) for the
// configuration whose results the store holds. A mismatch — the store
// was written under different machine parameters, workloads, or
// instruction windows — is an error; delete the directory (or rerun
// with the original parameters) to proceed.
func OpenCheckpointFS(fsys vfs.FS, dir, fingerprint string) (*Checkpoint, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, checkpointFile)
	data, err := fsys.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	p, err := parseStore(data, fingerprint)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	c := &Checkpoint{fsys: fsys, dir: dir, fp: fingerprint, seen: make(map[string]checkpointRecord, len(p.recs))}
	for _, rec := range p.recs {
		c.seen[rec.Key] = rec
	}
	if len(p.quarantined) > 0 {
		c.quarantined = len(p.quarantined)
		quarantine(fsys, dir, p.quarantined)
	}
	if p.rewrite {
		// Legacy format or mid-file corruption: rewrite the store
		// compacted to its surviving records, crash-atomically, so the
		// next scan is clean and v3-framed throughout.
		var buf bytes.Buffer
		hdr, err := json.Marshal(checkpointHeader{V: checkpointVersion, FP: fingerprint})
		if err != nil {
			return nil, err
		}
		buf.Write(hdr)
		buf.WriteByte('\n')
		for _, rec := range p.recs {
			b, err := json.Marshal(rec)
			if err != nil {
				return nil, err
			}
			buf.Write(frameRecord(b))
		}
		if err := vfs.WriteFileAtomic(fsys, path, buf.Bytes(), 0o644); err != nil {
			return nil, err
		}
		f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		c.f = f
		c.off = int64(buf.Len())
		return c, nil
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if int64(p.good) < int64(len(data)) {
		// Torn tail: cut it off and make the cut durable before the next
		// append can merge into it.
		if err := f.Truncate(int64(p.good)); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(int64(p.good), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	c.off = int64(p.good)
	if p.good == 0 {
		hdr, err := json.Marshal(checkpointHeader{V: checkpointVersion, FP: fingerprint})
		if err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		c.off = int64(len(hdr) + 1)
	}
	c.f = f
	return c, nil
}

// quarantine appends the raw bytes of rejected records to
// quarantine.jsonl, one line each. Best effort: quarantine exists for
// forensics, and a failure to write it must not block recovery of the
// healthy records.
func quarantine(fsys vfs.FS, dir string, lines [][]byte) {
	f, err := fsys.OpenFile(filepath.Join(dir, quarantineFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	for _, line := range lines {
		f.Write(append(line, '\n'))
	}
	f.Sync()
}

// Fingerprint returns the configuration fingerprint the store was
// opened with.
func (c *Checkpoint) Fingerprint() string { return c.fp }

// Quarantined returns how many corrupt records were detected and
// quarantined when the store was opened.
func (c *Checkpoint) Quarantined() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quarantined
}

// Put appends one completed run and fsyncs it; the record is durable
// when Put returns nil. Duplicate keys are ignored (the single-flight
// cache already guarantees one simulation per key; a resumed run only
// writes keys it actually simulated). Errors are returned for callers
// that must react (the service's degraded mode) and also latched for
// Err/Close — a broken checkpoint must not abort a healthy sweep.
func (c *Checkpoint) Put(key string, res sim.Result, samples []byte) error {
	return c.put(checkpointRecord{V: checkpointVersion, Key: key, Result: res, Samples: samples})
}

// PutBlob appends one opaque payload under key (the service's
// figure-table results). Blob and run records share the key space.
func (c *Checkpoint) PutBlob(key string, blob []byte) error {
	return c.put(checkpointRecord{V: checkpointVersion, Key: key, Blob: blob, IsBlob: true})
}

func (c *Checkpoint) put(rec checkpointRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		c.mu.Lock()
		if c.err == nil {
			c.err = err
		}
		c.mu.Unlock()
		return err
	}
	framed := frameRecord(data)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.seen[rec.Key]; ok {
		return nil
	}
	if c.f != nil {
		if c.dirty {
			if err := c.repairLocked(); err != nil {
				if c.err == nil {
					c.err = err
				}
				return err
			}
		}
		if _, err := c.f.Write(framed); err != nil {
			c.dirty = true
			if c.err == nil {
				c.err = err
			}
			return err
		}
		if err := c.f.Sync(); err != nil {
			// The bytes are complete but not durable; treat them as torn
			// so the retry rewrites them from the known-good offset.
			c.dirty = true
			if c.err == nil {
				c.err = err
			}
			return err
		}
		c.off += int64(len(framed))
	}
	c.seen[rec.Key] = rec
	return nil
}

// repairLocked cuts a possibly-torn tail back to the last durable
// record and makes the cut durable, so the next append starts on a
// clean record boundary. Called with c.mu held, before any append
// that follows a failed one.
func (c *Checkpoint) repairLocked() error {
	if err := c.f.Truncate(c.off); err != nil {
		return err
	}
	if _, err := c.f.Seek(c.off, io.SeekStart); err != nil {
		return err
	}
	if err := c.f.Sync(); err != nil {
		return err
	}
	c.dirty = false
	return nil
}

// Sync flushes the store file; a nil return means every acknowledged
// record is on stable storage. Used by the service's recovery probe
// to test whether a previously failing disk has healed.
func (c *Checkpoint) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	return c.f.Sync()
}

// Get returns the stored result for key, if present as a run record.
func (c *Checkpoint) Get(key string) (sim.Result, []byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.seen[key]
	if ok && rec.IsBlob {
		return sim.Result{}, nil, false
	}
	return rec.Result, rec.Samples, ok
}

// GetBlob returns the stored payload for key, if present as a blob
// record.
func (c *Checkpoint) GetBlob(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.seen[key]
	if !ok || !rec.IsBlob {
		return nil, false
	}
	return rec.Blob, true
}

// Has reports whether key is stored (run or blob record).
func (c *Checkpoint) Has(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.seen[key]
	return ok
}

// Len returns the number of stored runs.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.seen)
}

// Err returns the first write error, if any.
func (c *Checkpoint) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// ClearErr drops the latched write error. The service calls this once
// its recovery probe has re-persisted everything that failed, so an
// already-recovered incident does not surface again at Close.
func (c *Checkpoint) ClearErr() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.err = nil
}

// Close flushes and closes the store, returning the first error seen.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f != nil {
		if err := c.f.Close(); err != nil && c.err == nil {
			c.err = err
		}
		c.f = nil
	}
	return c.err
}
