package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/sim"
)

// checkpointVersion is bumped whenever the record layout (or the
// meaning of sim.Result fields) changes; a store written by another
// version is refused rather than silently misread.
const checkpointVersion = 1

// checkpointFile is the store's single append-only log.
const checkpointFile = "runs.jsonl"

// checkpointRecord is one completed run. sim.Result is plain exported
// numeric data, so JSON round-trips it exactly (uint64s parse exactly;
// float64 uses shortest-round-trip encoding) and a resumed sweep
// reproduces byte-identical tables.
type checkpointRecord struct {
	V       int        `json:"v"`
	Key     string     `json:"key"`
	Result  sim.Result `json:"result"`
	Samples []byte     `json:"samples,omitempty"` // JSONL series, if sampled
}

// Checkpoint is a versioned on-disk store of completed runs, keyed
// like the single-flight cache ("bench/config"). Records are appended
// as complete JSONL lines; on open, a torn tail (from a kill mid-
// write) is truncated away so the next append cannot merge into it.
type Checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	seen map[string]checkpointRecord
	err  error // first write error, reported at Close
}

// OpenCheckpoint opens (or creates) the store in dir, loading every
// complete record already present.
func OpenCheckpoint(dir string) (*Checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, checkpointFile)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	c := &Checkpoint{seen: make(map[string]checkpointRecord)}
	good := 0
	for good < len(data) {
		nl := bytes.IndexByte(data[good:], '\n')
		if nl < 0 {
			break // torn tail: record never finished writing
		}
		var rec checkpointRecord
		if json.Unmarshal(data[good:good+nl], &rec) != nil {
			break // torn or corrupt: drop this and everything after
		}
		if rec.V != checkpointVersion {
			return nil, fmt.Errorf("checkpoint %s: record version %d, this build writes %d (delete the directory to start over)",
				path, rec.V, checkpointVersion)
		}
		c.seen[rec.Key] = rec
		good += nl + 1
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(good)); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	c.f = f
	return c, nil
}

// Put appends one completed run. Duplicate keys are ignored (the
// single-flight cache already guarantees one simulation per key; a
// resumed run only writes keys it actually simulated). Write errors
// are latched and surfaced by Err/Close rather than failing the run —
// a broken checkpoint must not abort a healthy sweep.
func (c *Checkpoint) Put(key string, res sim.Result, samples []byte) {
	rec := checkpointRecord{V: checkpointVersion, Key: key, Result: res, Samples: samples}
	data, err := json.Marshal(rec)
	if err != nil {
		c.mu.Lock()
		if c.err == nil {
			c.err = err
		}
		c.mu.Unlock()
		return
	}
	data = append(data, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.seen[key]; ok {
		return
	}
	if c.f != nil {
		if _, err := c.f.Write(data); err != nil && c.err == nil {
			c.err = err
		}
	}
	c.seen[key] = rec
}

// Get returns the stored result for key, if present.
func (c *Checkpoint) Get(key string) (sim.Result, []byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.seen[key]
	return rec.Result, rec.Samples, ok
}

// Len returns the number of stored runs.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.seen)
}

// Err returns the first write error, if any.
func (c *Checkpoint) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close flushes and closes the store, returning the first error seen.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f != nil {
		if err := c.f.Close(); err != nil && c.err == nil {
			c.err = err
		}
		c.f = nil
	}
	return c.err
}
