// Package experiments reproduces every table and figure of the paper's
// evaluation (§4). Each FigNN function runs the required simulations
// and returns a Table whose rows mirror the corresponding plot's
// series; cmd/experiments prints them all and EXPERIMENTS.md records
// paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	// ID is the paper artifact ("fig05"), Title its caption.
	ID    string
	Title string
	// Header names the columns; Rows hold the cells.
	Header []string
	Rows   [][]string
	// Notes carry shape assertions and caveats, printed under the table.
	Notes []string
	// Failed marks a table carrying error rows from failed runs; the
	// cmd tools exit nonzero when any printed table is failed.
	Failed bool
}

// fail marks the table failed and records the error (with a trimmed
// stack for panics) in its notes.
func (t *Table) fail(err *RunError) {
	t.Failed = true
	t.Note("FAILED cell: %s", err.Error())
	for _, l := range stackLines(err.Stack, 16) {
		t.Note("%s", l)
	}
}

// AnyFailed reports whether any table carries a failure.
func AnyFailed(tables []*Table) bool {
	for _, t := range tables {
		if t != nil && t.Failed {
			return true
		}
	}
	return false
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := len(c)
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// fmtPct renders a ratio as a percentage string ("23.5%").
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// fmtSpeedup renders a speedup factor ("1.235").
func fmtSpeedup(v float64) string { return fmt.Sprintf("%.3f", v) }

// fmtF renders a float with 2 decimals.
func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }

// geomean returns the geometric mean of vs (1.0 for empty).
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 1
	}
	prod := 1.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		prod *= v
	}
	return math.Pow(prod, 1/float64(len(vs)))
}
