package telemetry

import (
	"fmt"
	"sync/atomic"
	"time"
)

// RunWatch is the cooperative cancellation point of one simulation
// run. The simulator adds retired-instruction counts in coarse chunks
// and polls Cancelled at the same cadence; a watchdog goroutine (or a
// test) calls Cancel from outside. Cancellation is cooperative: a run
// notices it at the next progress flush, so only a simulation that is
// still stepping can be stopped — a goroutine wedged outside the step
// loop cannot be killed from the outside in Go.
type RunWatch struct {
	instr    atomic.Uint64
	reason   atomic.Pointer[string]
	onCancel atomic.Pointer[func(string)]
}

// NewRunWatch returns a fresh, uncancelled watch.
func NewRunWatch() *RunWatch { return &RunWatch{} }

// Add implements ProgressSink for the watch's own instruction counter.
func (w *RunWatch) Add(instructions uint64) { w.instr.Add(instructions) }

// Instructions returns the instructions reported so far.
func (w *RunWatch) Instructions() uint64 { return w.instr.Load() }

// NotifyCancel registers fn to run once if the watch is ever
// cancelled, from whichever goroutine wins the cancel (the watchdog
// or a test). The service bridges this into the job's trace so an
// aborted run's span records why it was killed. Register before the
// run starts; a late registration after cancel never fires.
func (w *RunWatch) NotifyCancel(fn func(reason string)) { w.onCancel.Store(&fn) }

// Cancel requests the run stop with the given reason. The first cancel
// wins; later calls are no-ops.
func (w *RunWatch) Cancel(reason string) {
	if w.reason.CompareAndSwap(nil, &reason) {
		if fn := w.onCancel.Load(); fn != nil {
			(*fn)(reason)
		}
	}
}

// Cancelled reports whether the run was cancelled, and why.
func (w *RunWatch) Cancelled() (reason string, ok bool) {
	if p := w.reason.Load(); p != nil {
		return *p, true
	}
	return "", false
}

// StartWatchdog monitors w from a background goroutine and cancels it
// when the run exceeds its wall-clock deadline or makes no instruction
// progress for stall. Either bound may be zero (disabled). The
// returned stop func must be called when the run finishes (deferred);
// it is idempotent-free but safe to call after the watchdog fired.
func StartWatchdog(w *RunWatch, deadline, stall time.Duration) (stop func()) {
	if deadline <= 0 && stall <= 0 {
		return func() {}
	}
	interval := 250 * time.Millisecond
	if deadline > 0 && deadline/8 < interval {
		interval = deadline / 8
	}
	if stall > 0 && stall/4 < interval {
		interval = stall / 4
	}
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		start := time.Now()
		lastInstr := w.Instructions()
		lastChange := start
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				if deadline > 0 && now.Sub(start) >= deadline {
					w.Cancel(fmt.Sprintf("wall-clock deadline %s exceeded (%d instructions retired)",
						deadline, w.Instructions()))
					return
				}
				if stall > 0 {
					if in := w.Instructions(); in != lastInstr {
						lastInstr, lastChange = in, now
					} else if now.Sub(lastChange) >= stall {
						w.Cancel(fmt.Sprintf("no instruction progress for %s (stuck at %d)", stall, in))
						return
					}
				}
			}
		}
	}()
	return func() { close(done) }
}
