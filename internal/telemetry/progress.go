package telemetry

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// PoolProgress tracks a parallel experiment pool's live throughput:
// how many workers are busy, how many runs and work units have
// finished, and how many instructions have been simulated so far.
// All methods are safe for concurrent use. It implements ProgressSink,
// so it can be attached directly to sim.Options.Telemetry.Progress.
type PoolProgress struct {
	instr      atomic.Uint64 // instructions simulated (live, chunked)
	runs       atomic.Uint64 // simulations completed
	units      atomic.Uint64 // work units (figures/tables/cells) completed
	unitsTotal atomic.Uint64 // expected work units, 0 if unknown
	workers    atomic.Int64  // currently busy workers
	start      atomic.Int64  // UnixNano of first activity, 0 before
}

// NewPoolProgress returns a zeroed progress tracker. totalUnits is
// the expected number of work units for ETA reporting; pass 0 when
// unknown.
func NewPoolProgress(totalUnits int) *PoolProgress {
	p := &PoolProgress{}
	if totalUnits > 0 {
		p.unitsTotal.Store(uint64(totalUnits))
	}
	return p
}

// Add implements ProgressSink: record live simulated instructions.
func (p *PoolProgress) Add(instructions uint64) {
	p.instr.Add(instructions)
}

// WorkerStart marks one worker busy (and starts the clock on first
// call).
func (p *PoolProgress) WorkerStart() {
	if p.start.Load() == 0 {
		p.start.CompareAndSwap(0, time.Now().UnixNano())
	}
	p.workers.Add(1)
}

// WorkerDone marks one worker idle again.
func (p *PoolProgress) WorkerDone() { p.workers.Add(-1) }

// RunDone records one completed simulation.
func (p *PoolProgress) RunDone() { p.runs.Add(1) }

// UnitDone records one completed work unit (a figure, table or sweep
// cell).
func (p *PoolProgress) UnitDone() { p.units.Add(1) }

// Snapshot is a consistent-enough view for display purposes.
type Snapshot struct {
	Instructions uint64
	Runs         uint64
	Units        uint64
	UnitsTotal   uint64
	Workers      int64
	Elapsed      time.Duration
}

// Snapshot reads the counters.
func (p *PoolProgress) Snapshot() Snapshot {
	var elapsed time.Duration
	if s := p.start.Load(); s != 0 {
		elapsed = time.Duration(time.Now().UnixNano() - s)
	}
	return Snapshot{
		Instructions: p.instr.Load(),
		Runs:         p.runs.Load(),
		Units:        p.units.Load(),
		UnitsTotal:   p.unitsTotal.Load(),
		Workers:      p.workers.Load(),
		Elapsed:      elapsed,
	}
}

// Line renders a one-line status like
//
//	12/37 units | 58 runs | 312.4 Minstr | 41.2 Minstr/s | 4 busy | ETA 0:42
//
// ETA is omitted when the total unit count is unknown or nothing has
// finished yet.
func (s Snapshot) Line() string {
	secs := s.Elapsed.Seconds()
	rate := 0.0
	if secs > 0 {
		rate = float64(s.Instructions) / 1e6 / secs
	}
	units := fmt.Sprintf("%d units", s.Units)
	if s.UnitsTotal > 0 {
		units = fmt.Sprintf("%d/%d units", s.Units, s.UnitsTotal)
	}
	line := fmt.Sprintf("%s | %d runs | %.1f Minstr | %.1f Minstr/s | %d busy",
		units, s.Runs, float64(s.Instructions)/1e6, rate, s.Workers)
	if s.UnitsTotal > 0 && s.Units > 0 && s.Units < s.UnitsTotal {
		per := s.Elapsed / time.Duration(s.Units)
		eta := per * time.Duration(s.UnitsTotal-s.Units)
		line += fmt.Sprintf(" | ETA %s", eta.Round(time.Second))
	}
	return line
}

// StartPrinter spawns a goroutine writing the progress line to w
// every interval until stop is called. Lines are terminated with \n
// (plain log style, safe for redirection).
func StartPrinter(w io.Writer, p *PoolProgress, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				fmt.Fprintf(w, "progress: %s\n", p.Snapshot().Line())
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		fmt.Fprintf(w, "progress: %s\n", p.Snapshot().Line())
	}
}
