package telemetry

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile written to path and returns a
// stop function that finishes the profile and closes the file. A
// shared helper so every cmd tool exposes identical -cpuprofile
// behavior.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes an up-to-date heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC() // flush recently freed objects so the profile reflects live heap
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}
