package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// CoreSample is one core's slice of an interval snapshot. Rates (IPC,
// MPKI, accuracy, hit rate) are computed over the interval since the
// previous sample, not cumulatively, so phase changes are visible.
type CoreSample struct {
	// Core is the core id.
	Core int `json:"core"`
	// Instructions retired by this core since the measurement window
	// started (cumulative; frozen cores keep counting while they
	// sustain contention).
	Instructions uint64 `json:"instructions"`
	// IPC over the interval.
	IPC float64 `json:"ipc"`
	// L2MPKI is L2 demand misses per kilo-instruction over the interval.
	L2MPKI float64 `json:"l2_mpki"`
	// Accuracy is used/filled L2 prefetches over the interval.
	Accuracy float64 `json:"accuracy"`
	// Covered is the interval coverage proxy: prefetched-and-used lines
	// as a fraction of all would-be L2 demand misses (used + missed).
	Covered float64 `json:"covered"`
	// MetaWays is the LLC way share currently claimed by this core's
	// prefetcher metadata (the Fig. 19 quantity).
	MetaWays float64 `json:"meta_ways"`
	// MetaHitRate is the Triage metadata-store lookup hit rate over the
	// interval (0 when the core has no Triage prefetcher).
	MetaHitRate float64 `json:"meta_hit_rate"`
}

// Sample is one time-series point.
type Sample struct {
	// Interval is the sample index (0-based).
	Interval int `json:"interval"`
	// Tick is the simulator tick at sample time (max retire tick over
	// cores; 4 ticks per core cycle).
	Tick uint64 `json:"tick"`
	// Instructions is the total retired across cores in the
	// measurement window so far.
	Instructions uint64 `json:"instructions"`
	// LLCMPKI is shared-LLC demand misses per kilo-instruction over
	// the interval.
	LLCMPKI float64 `json:"llc_mpki"`
	// DRAMBusy is the fraction of available DRAM channel bandwidth
	// consumed over the interval (clamped to [0, 1]).
	DRAMBusy float64 `json:"dram_busy"`
	// DRAMLines is the number of line transfers over the interval.
	DRAMLines uint64 `json:"dram_lines"`
	// Cores holds the per-core sub-samples.
	Cores []CoreSample `json:"cores"`
}

// Sampler accumulates interval snapshots of a single run. The
// simulator adds one Sample every Every() retired instructions during
// the measurement window; the writers then emit a deterministic JSONL
// or CSV time series.
type Sampler struct {
	every   uint64
	samples []Sample
	// sink, when non-nil, additionally receives every sample as it is
	// recorded (live streaming to a JobFeed); called synchronously on
	// the simulator goroutine.
	sink func(Sample)
}

// NewSampler returns a sampler with the given interval in retired
// instructions (summed across cores). every == 0 disables sampling.
func NewSampler(every uint64) *Sampler {
	return &Sampler{every: every}
}

// Every returns the sampling interval in retired instructions.
func (s *Sampler) Every() uint64 { return s.every }

// Add appends one snapshot.
func (s *Sampler) Add(smp Sample) {
	s.samples = append(s.samples, smp)
	if s.sink != nil {
		s.sink(smp)
	}
}

// Stream attaches a live sink invoked for every recorded sample, in
// order, from the simulator goroutine. The sink must be fast or hand
// off; it does not affect the stored series. Call before the run
// starts.
func (s *Sampler) Stream(sink func(Sample)) { s.sink = sink }

// Samples returns the recorded series (not a copy; callers must not
// mutate).
func (s *Sampler) Samples() []Sample { return s.samples }

// WriteJSONL emits one JSON object per sample, in order. The field
// order is fixed by the struct layout, so output is byte-deterministic
// for a deterministic run.
func (s *Sampler) WriteJSONL(w io.Writer) error {
	for i := range s.samples {
		b, err := json.Marshal(&s.samples[i])
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// csvHeader is the flat per-(interval, core) schema of WriteCSV.
const csvHeader = "interval,tick,core,instructions,ipc,l2_mpki,llc_mpki,accuracy,covered,meta_ways,meta_hit_rate,dram_busy,dram_lines\n"

// WriteCSV emits the series as one row per (interval, core); the
// machine-level columns (llc_mpki, dram_busy, dram_lines) repeat on
// every core row of an interval.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, csvHeader); err != nil {
		return err
	}
	for i := range s.samples {
		smp := &s.samples[i]
		for _, c := range smp.Cores {
			_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%s,%s,%s,%s,%s,%s,%s,%s,%d\n",
				smp.Interval, smp.Tick, c.Core, c.Instructions,
				ftoa(c.IPC), ftoa(c.L2MPKI), ftoa(smp.LLCMPKI),
				ftoa(c.Accuracy), ftoa(c.Covered),
				ftoa(c.MetaWays), ftoa(c.MetaHitRate),
				ftoa(smp.DRAMBusy), smp.DRAMLines)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// ftoa formats floats with the shortest round-trip representation
// (matching encoding/json, so the CSV and JSONL series agree).
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
