package telemetry

import (
	"sync"
	"testing"
)

func TestJobFeedProgressAndSamples(t *testing.T) {
	f := NewJobFeed()
	f.Add(100)
	f.Add(50)
	if got := f.Instructions(); got != 150 {
		t.Errorf("Instructions = %d, want 150", got)
	}
	f.OnSample(Sample{Interval: 0})
	f.OnSample(Sample{Interval: 1})
	first := f.SamplesSince(0)
	if len(first) != 2 {
		t.Fatalf("SamplesSince(0) = %d samples, want 2", len(first))
	}
	// Cursor semantics: only the unseen tail comes back.
	f.OnSample(Sample{Interval: 2})
	tail := f.SamplesSince(2)
	if len(tail) != 1 || tail[0].Interval != 2 {
		t.Errorf("SamplesSince(2) = %+v, want just interval 2", tail)
	}
	if got := f.SamplesSince(3); got != nil {
		t.Errorf("SamplesSince past the end = %+v, want nil", got)
	}
}

func TestJobFeedDoneIdempotent(t *testing.T) {
	f := NewJobFeed()
	select {
	case <-f.Done():
		t.Fatal("feed done before Finish")
	default:
	}
	f.Finish()
	f.Finish() // must not panic
	select {
	case <-f.Done():
	default:
		t.Fatal("Done not closed after Finish")
	}
}

// TestJobFeedConcurrent exercises the write side against pollers under
// -race: one producer, several consumers.
func TestJobFeedConcurrent(t *testing.T) {
	f := NewJobFeed()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			f.Add(10)
			f.OnSample(Sample{Interval: i})
		}
		f.Finish()
	}()
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cursor := 0
			for {
				cursor += len(f.SamplesSince(cursor))
				f.Instructions()
				select {
				case <-f.Done():
					if got := cursor + len(f.SamplesSince(cursor)); got != 500 {
						t.Errorf("consumer saw %d samples, want 500", got)
					}
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
}

type countSink struct{ n uint64 }

func (c *countSink) Add(instructions uint64) { c.n += instructions }

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Error("Tee of no live sinks should be nil")
	}
	a := &countSink{}
	if got := Tee(nil, a); got != a {
		t.Error("Tee of one live sink should return it unwrapped")
	}
	b := &countSink{}
	tee := Tee(a, nil, b)
	tee.Add(7)
	tee.Add(3)
	if a.n != 10 || b.n != 10 {
		t.Errorf("tee delivered a=%d b=%d, want 10/10", a.n, b.n)
	}
}

func TestSamplerStream(t *testing.T) {
	s := NewSampler(100)
	var got []int
	s.Stream(func(smp Sample) { got = append(got, smp.Interval) })
	s.Add(Sample{Interval: 0})
	s.Add(Sample{Interval: 1})
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("stream sink saw %v, want [0 1]", got)
	}
	if len(s.Samples()) != 2 {
		t.Errorf("stored series has %d samples, want 2 (sink must not replace storage)", len(s.Samples()))
	}
}
