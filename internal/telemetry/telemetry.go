// Package telemetry is the simulator's observability layer: a
// time-series sampler that snapshots per-core performance counters at
// a fixed instruction interval (the Fig. 19-style curves as first-class
// outputs), a bounded structured event trace for the prefetch
// lifecycle, live progress counters for the parallel experiment pool,
// and pprof helpers for the cmd tools.
//
// Everything here is optional and nil-guarded: the simulator accepts a
// nil *Hooks (or nil fields inside one) and the disabled path costs a
// single predictable branch per retired instruction in the hot loop.
// Output writers are deterministic — the same run produces byte-
// identical JSONL/CSV regardless of pool width, which the experiments
// determinism tests pin.
package telemetry

// Hooks bundles the instrumentation attached to one simulation run.
// Sampler and Events carry per-run state and must not be shared
// between concurrently running machines; Progress is updated with
// atomics and is safe to share across a whole worker pool.
type Hooks struct {
	// Sampler, when non-nil, records a counter snapshot every
	// Sampler.Every() retired instructions (summed across cores).
	Sampler *Sampler
	// Events, when non-nil, receives structured prefetch-lifecycle,
	// partition-resize and predictor-decision events.
	Events *EventTrace
	// Progress, when non-nil, receives live retired-instruction counts
	// in coarse chunks (for instr/s and ETA displays).
	Progress ProgressSink
	// Watch, when non-nil, is the run's cooperative cancellation point:
	// the simulator reports instruction progress to it and aborts the
	// run (by panicking with a structured error) once a watchdog has
	// cancelled it. See RunWatch.
	Watch *RunWatch
}

// ProgressSink receives live instruction-count updates from a running
// simulation. Implementations must be safe for concurrent use; the
// simulator reports in coarse chunks (every few thousand instructions)
// so the sink is off the per-instruction path.
type ProgressSink interface {
	Add(instructions uint64)
}
