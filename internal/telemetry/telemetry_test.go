package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSamplerJSONLDeterministic(t *testing.T) {
	mk := func() *Sampler {
		s := NewSampler(1000)
		s.Add(Sample{Interval: 0, Tick: 4000, Instructions: 1000, LLCMPKI: 1.5,
			DRAMBusy: 0.25, DRAMLines: 10,
			Cores: []CoreSample{{Core: 0, Instructions: 1000, IPC: 1, MetaWays: 2.5}}})
		s.Add(Sample{Interval: 1, Tick: 8000, Instructions: 2000,
			Cores: []CoreSample{{Core: 0, Instructions: 2000, IPC: 0.5}}})
		return s
	}
	var a, b bytes.Buffer
	if err := mk().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("JSONL output not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	lines := strings.Split(strings.TrimRight(a.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 JSONL lines, got %d", len(lines))
	}
	if !strings.Contains(lines[0], `"meta_ways":2.5`) {
		t.Errorf("first line missing meta_ways: %s", lines[0])
	}
	if !strings.HasPrefix(lines[0], `{"interval":0,"tick":4000,`) {
		t.Errorf("unexpected field order: %s", lines[0])
	}
}

func TestSamplerCSV(t *testing.T) {
	s := NewSampler(1000)
	s.Add(Sample{Interval: 0, Tick: 4000, Instructions: 2000, LLCMPKI: 2, DRAMLines: 7,
		Cores: []CoreSample{
			{Core: 0, Instructions: 1000, IPC: 1.25},
			{Core: 1, Instructions: 1000, IPC: 0.75},
		}})
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 { // header + one row per core
		t.Fatalf("want 3 CSV lines, got %d: %q", len(lines), buf.String())
	}
	if lines[0] != strings.TrimRight(csvHeader, "\n") {
		t.Errorf("bad header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,4000,0,1000,1.25,") {
		t.Errorf("bad row for core 0: %s", lines[1])
	}
	if !strings.HasPrefix(lines[2], "0,4000,1,1000,0.75,") {
		t.Errorf("bad row for core 1: %s", lines[2])
	}
}

func TestEventTraceRingWraps(t *testing.T) {
	tr := NewEventTrace(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Tick: uint64(i), Kind: EvIssued, Core: 0})
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(6 + i); e.Tick != want {
			t.Errorf("event %d tick = %d, want %d (oldest-first order)", i, e.Tick, want)
		}
	}
}

func TestEventTracePartialFill(t *testing.T) {
	tr := NewEventTrace(8)
	tr.Emit(Event{Tick: 1, Kind: EvTrained})
	tr.Emit(Event{Tick: 2, Kind: EvFilled})
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Tick != 1 || evs[1].Tick != 2 {
		t.Fatalf("unexpected events: %+v", evs)
	}
}

func TestEventTraceJSONL(t *testing.T) {
	tr := NewEventTrace(16)
	tr.Emit(Event{Tick: 12, Kind: EvDropped, Core: 1, Line: 0xabc0, A: 2})
	tr.Emit(Event{Tick: 20, Kind: EvPartitionResize, Core: -1, A: 2, B: 4})
	tr.Emit(Event{Tick: 30, Kind: EvPredictor, Core: 0, PC: 0x401000, A: 1})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d", len(lines))
	}
	if want := `{"tick":12,"kind":"dropped","core":1,"line":"0xabc0","a":2}`; lines[0] != want {
		t.Errorf("line 0 = %s, want %s", lines[0], want)
	}
	if want := `{"tick":20,"kind":"partition_resize","core":-1,"a":2,"b":4}`; lines[1] != want {
		t.Errorf("line 1 = %s, want %s", lines[1], want)
	}
	if want := `{"tick":30,"kind":"predictor","core":0,"pc":"0x401000","a":1}`; lines[2] != want {
		t.Errorf("line 2 = %s, want %s", lines[2], want)
	}
}

func TestEventKindNames(t *testing.T) {
	for k := EvTrained; k <= EvPredictor; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if EventKind(200).String() != "unknown" {
		t.Errorf("out-of-range kind should be unknown")
	}
}

func TestHex64(t *testing.T) {
	cases := map[uint64]string{
		0:                  "0x0",
		0xf:                "0xf",
		0x401000:           "0x401000",
		0xffffffffffffffff: "0xffffffffffffffff",
	}
	for v, want := range cases {
		if got := hex64(v); got != want {
			t.Errorf("hex64(%d) = %s, want %s", v, got, want)
		}
	}
}

func TestPoolProgress(t *testing.T) {
	p := NewPoolProgress(4)
	p.WorkerStart()
	p.Add(1_000_000)
	p.RunDone()
	p.UnitDone()
	s := p.Snapshot()
	if s.Instructions != 1_000_000 || s.Runs != 1 || s.Units != 1 || s.UnitsTotal != 4 || s.Workers != 1 {
		t.Fatalf("unexpected snapshot: %+v", s)
	}
	line := s.Line()
	for _, want := range []string{"1/4 units", "1 runs", "1 busy"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
	p.WorkerDone()
	if got := p.Snapshot().Workers; got != 0 {
		t.Errorf("workers after done = %d, want 0", got)
	}
}

func TestStartPrinterStops(t *testing.T) {
	var buf bytes.Buffer
	p := NewPoolProgress(0)
	stop := StartPrinter(&buf, p, time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	stop()
	if !strings.Contains(buf.String(), "progress:") {
		t.Fatalf("printer wrote nothing: %q", buf.String())
	}
}
