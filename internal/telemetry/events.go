package telemetry

import (
	"encoding/json"
	"io"
)

// EventKind tags one structured trace event.
type EventKind uint8

const (
	// EvTrained: the prefetcher produced a candidate for Line (from a
	// training access at PC). One per requested prefetch.
	EvTrained EventKind = iota
	// EvIssued: the candidate entered the L2 MSHR/prefetch queue and a
	// memory request was sent. Tick is the issue tick.
	EvIssued
	// EvRedundant: the candidate was already present or in flight at
	// L2; no request was sent.
	EvRedundant
	// EvDropped: the candidate was discarded. A=1 means the issue
	// delay window expired, A=2 means the prefetch queue was full.
	EvDropped
	// EvFilled: the prefetched line arrived and was installed in L2.
	// Tick is the fill tick.
	EvFilled
	// EvUsed: a demand access hit a line that was brought in by a
	// prefetch (Level 2 = L2 hit, 3 = LLC hit).
	EvUsed
	// EvEvictedUnused: a prefetched line was evicted before any demand
	// access touched it (Level identifies the cache).
	EvEvictedUnused
	// EvPartitionResize: the Triage LLC way partition changed.
	// A = old ways, B = new ways (machine total, in LLC ways).
	EvPartitionResize
	// EvPredictor: the Hawkeye/OPTgen sizer trained its PC predictor.
	// A = 1 for a positive (OPT hit) update, 0 for negative.
	EvPredictor
)

// kindNames must stay in sync with the EventKind constants above.
var kindNames = [...]string{
	"trained", "issued", "redundant", "dropped", "filled",
	"used", "evicted_unused", "partition_resize", "predictor",
}

// String returns the stable lowercase name used in JSONL output.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one structured trace record. The meaning of Line, PC, A
// and B depends on Kind; unused fields are zero.
type Event struct {
	// Tick is the simulator tick the event was observed at.
	Tick uint64
	// Line is the cache-line-aligned address involved, if any.
	Line uint64
	// PC is the program counter involved, if any.
	PC uint64
	// A, B carry kind-specific operands (drop reason, old/new ways,
	// predictor polarity).
	A, B int64
	// Core is the core id, or -1 for machine-level events.
	Core int32
	// Kind tags the record.
	Kind EventKind
	// Level is the cache level involved (2 or 3), if any.
	Level uint8
}

// EventTrace is a bounded ring buffer of Events. When full, new
// events overwrite the oldest, so the trace always holds the last
// cap events of the run. It is not safe for concurrent use; each
// running machine owns its own trace.
type EventTrace struct {
	buf   []Event
	total uint64
}

// NewEventTrace returns a trace that keeps the last cap events.
func NewEventTrace(cap int) *EventTrace {
	if cap < 1 {
		cap = 1
	}
	return &EventTrace{buf: make([]Event, 0, cap)}
}

// Emit records one event, overwriting the oldest when full.
func (t *EventTrace) Emit(e Event) {
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.total%uint64(len(t.buf))] = e
	}
	t.total++
}

// Total returns the number of events emitted over the whole run,
// including ones that have been overwritten.
func (t *EventTrace) Total() uint64 { return t.total }

// Events returns the retained events in emission order (oldest
// first). It allocates a fresh slice.
func (t *EventTrace) Events() []Event {
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) && t.total > uint64(len(t.buf)) {
		start := t.total % uint64(len(t.buf))
		out = append(out, t.buf[start:]...)
		out = append(out, t.buf[:start]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// eventJSON is the stable JSONL schema for one event. Numeric
// operands are emitted only when meaningful for the kind.
type eventJSON struct {
	Tick  uint64 `json:"tick"`
	Kind  string `json:"kind"`
	Core  int32  `json:"core"`
	Level uint8  `json:"level,omitempty"`
	Line  string `json:"line,omitempty"`
	PC    string `json:"pc,omitempty"`
	A     int64  `json:"a,omitempty"`
	B     int64  `json:"b,omitempty"`
}

// WriteJSONL emits the retained events, oldest first, one JSON object
// per line. Addresses are hex strings for readability.
func (t *EventTrace) WriteJSONL(w io.Writer) error {
	for _, e := range t.Events() {
		rec := eventJSON{
			Tick:  e.Tick,
			Kind:  e.Kind.String(),
			Core:  e.Core,
			Level: e.Level,
			A:     e.A,
			B:     e.B,
		}
		if e.Line != 0 {
			rec.Line = hex64(e.Line)
		}
		if e.PC != 0 {
			rec.PC = hex64(e.PC)
		}
		b, err := json.Marshal(&rec)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

const hexDigits = "0123456789abcdef"

// hex64 formats v as 0x-prefixed lowercase hex without allocating
// through fmt.
func hex64(v uint64) string {
	var tmp [18]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = hexDigits[v&0xf]
		v >>= 4
		if v == 0 {
			break
		}
	}
	i -= 2
	tmp[i], tmp[i+1] = '0', 'x'
	return string(tmp[i:])
}
