package telemetry

import (
	"sync"
	"sync/atomic"
)

// JobFeed fans one running simulation's live telemetry out to any
// number of late-joining consumers (the service's SSE handlers): a
// cumulative retired-instruction counter, the sampled time series as
// it accumulates, and a done signal. It implements ProgressSink, so it
// plugs straight into Hooks.Progress; attach the sampler side with
// Sampler.Stream(feed.OnSample).
//
// Consumers poll rather than subscribe: Instructions is one atomic
// load and SamplesSince copies only the unseen tail, so a slow SSE
// client can never stall the simulation, and a client that connects
// mid-run still sees the full series from interval zero.
type JobFeed struct {
	instr atomic.Uint64

	mu      sync.Mutex
	samples []Sample

	done     chan struct{}
	doneOnce sync.Once
}

// NewJobFeed returns an empty feed.
func NewJobFeed() *JobFeed { return &JobFeed{done: make(chan struct{})} }

// Add implements ProgressSink: accumulate retired instructions.
func (f *JobFeed) Add(instructions uint64) { f.instr.Add(instructions) }

// Instructions returns the instructions retired so far.
func (f *JobFeed) Instructions() uint64 { return f.instr.Load() }

// OnSample records one interval sample; pass it to Sampler.Stream.
func (f *JobFeed) OnSample(s Sample) {
	f.mu.Lock()
	f.samples = append(f.samples, s)
	f.mu.Unlock()
}

// SamplesSince returns a copy of the samples recorded after the first
// n (the consumer's cursor): call with 0 to catch up from the start,
// then advance the cursor by len of the returned slice.
func (f *JobFeed) SamplesSince(n int) []Sample {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n >= len(f.samples) {
		return nil
	}
	out := make([]Sample, len(f.samples)-n)
	copy(out, f.samples[n:])
	return out
}

// Finish signals consumers that the job is over (done, failed, or
// cancelled). Idempotent.
func (f *JobFeed) Finish() { f.doneOnce.Do(func() { close(f.done) }) }

// Done returns a channel closed by Finish.
func (f *JobFeed) Done() <-chan struct{} { return f.done }

// teeSink duplicates progress updates to several sinks.
type teeSink []ProgressSink

func (t teeSink) Add(instructions uint64) {
	for _, s := range t {
		s.Add(instructions)
	}
}

// Tee returns a ProgressSink forwarding every Add to all of the given
// sinks (nils are skipped); nil when none remain. The service uses it
// to feed a job's own JobFeed and the server-wide pool counters from
// one simulation.
func Tee(sinks ...ProgressSink) ProgressSink {
	var live teeSink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
