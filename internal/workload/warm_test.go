package workload

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// tierCounts classifies chase loads by the traversal tier their node
// belongs to, using the generator's own region layout.
func tierCounts(p ChaseParams, n int) (hot, warm, cold int) {
	c := NewChase(p, 11, 0).(*chase)
	hotN := int(p.HotFrac * float64(p.Nodes))
	warmN := int(p.WarmFrac * float64(p.Nodes))
	// Invert order[] so we can map an address back to its position.
	posOf := make([]int, p.Nodes)
	for pos, node := range c.order {
		posOf[node] = pos
	}
	seen := 0
	for seen < n {
		rec, _ := c.Next()
		if rec.Op != trace.Load || rec.PC == pcNoise {
			continue
		}
		seen++
		pos := posOf[int(mem.LineOf(rec.Addr))]
		switch {
		case pos < hotN:
			hot++
		case pos < hotN+warmN:
			warm++
		default:
			cold++
		}
	}
	return
}

// TestWarmTierVisitShares verifies the three-tier reuse distribution:
// accesses split roughly by (HotProb, WarmProb, rest), which is what
// makes the 512KB-vs-1MB store choice meaningful (DESIGN.md §5).
func TestWarmTierVisitShares(t *testing.T) {
	p := ChaseParams{
		Nodes: 64 << 10, Streams: 2,
		HotFrac: 0.1, HotProb: 0.4,
		WarmFrac: 0.4, WarmProb: 0.45,
		RunLen: 128, Gap: 0,
	}
	hot, warm, cold := tierCounts(p, 200_000)
	total := float64(hot + warm + cold)
	hotF, warmF, coldF := float64(hot)/total, float64(warm)/total, float64(cold)/total
	// Runs drift past tier boundaries, so allow generous bands.
	if hotF < 0.30 || hotF > 0.55 {
		t.Errorf("hot share %.2f, want ~0.40", hotF)
	}
	if warmF < 0.35 || warmF > 0.60 {
		t.Errorf("warm share %.2f, want ~0.45", warmF)
	}
	if coldF < 0.05 || coldF > 0.25 {
		t.Errorf("cold share %.2f, want ~0.15", coldF)
	}
}

// TestWarmTierReusePerLine: hot lines must be revisited far more often
// than warm lines, and warm more than cold.
func TestWarmTierReusePerLine(t *testing.T) {
	p := ChaseParams{
		Nodes: 32 << 10, Streams: 1,
		HotFrac: 0.1, HotProb: 0.5,
		WarmFrac: 0.4, WarmProb: 0.4,
		RunLen: 128, Gap: 0,
	}
	hot, warm, cold := tierCounts(p, 300_000)
	hotLines := p.HotFrac * float64(p.Nodes)
	warmLines := p.WarmFrac * float64(p.Nodes)
	coldLines := (1 - p.HotFrac - p.WarmFrac) * float64(p.Nodes)
	hotPer := float64(hot) / hotLines
	warmPer := float64(warm) / warmLines
	coldPer := float64(cold) / coldLines
	if !(hotPer > 2*warmPer && warmPer > 2*coldPer) {
		t.Errorf("reuse per line not tiered: hot %.1f, warm %.1f, cold %.1f", hotPer, warmPer, coldPer)
	}
}

// TestNoWarmTierIsTwoTier: WarmFrac 0 degenerates to the original
// hot/cold behavior without panicking.
func TestNoWarmTierIsTwoTier(t *testing.T) {
	p := ChaseParams{
		Nodes: 8 << 10, Streams: 1, HotFrac: 0.2, HotProb: 0.8,
		RunLen: 64, Gap: 0,
	}
	hot, _, cold := tierCounts(p, 50_000)
	if hot == 0 || cold == 0 {
		t.Errorf("two-tier counts degenerate: hot=%d cold=%d", hot, cold)
	}
}

// TestMixSpecBuilders exercises all three spec constructors through the
// public suite (every benchmark must emit stable PCs and legal ops).
func TestSpecStreamsWellFormed(t *testing.T) {
	for _, s := range All() {
		recs := trace.Collect(s.New(3, 1<<40), 5000)
		loads := 0
		for i, r := range recs {
			if r.Op > trace.Store {
				t.Fatalf("%s: bad op at %d", s.Name, i)
			}
			if r.Op != trace.NonMem {
				if r.Addr < 1<<40 {
					t.Fatalf("%s: address %#x below base", s.Name, r.Addr)
				}
				if r.Op == trace.Load {
					loads++
				}
			}
		}
		if loads == 0 {
			t.Errorf("%s: no loads in 5000 records", s.Name)
		}
	}
}
