package workload

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

func TestChaseDeterministic(t *testing.T) {
	p := ChaseParams{Nodes: 1024, Streams: 2, HotFrac: 0.2, HotProb: 0.8, RunLen: 32, Gap: 4}
	a := trace.Collect(NewChase(p, 7, 0), 5000)
	b := trace.Collect(NewChase(p, 7, 0), 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := trace.Collect(NewChase(p, 8, 0), 5000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestChaseTemporalRepetition(t *testing.T) {
	// The defining property: the successor of a node in traversal order
	// is stable across runs, so a temporal prefetcher can learn it.
	p := ChaseParams{Nodes: 256, Streams: 1, HotFrac: 1, HotProb: 1, RunLen: 64, Gap: 0}
	recs := trace.Collect(NewChase(p, 3, 0), 50000)
	succ := map[mem.Addr]map[mem.Addr]int{}
	var prev mem.Addr
	havePrev := false
	for _, r := range recs {
		if r.Op != trace.Load || r.PC != pcStream(0) {
			continue
		}
		if havePrev {
			if succ[prev] == nil {
				succ[prev] = map[mem.Addr]int{}
			}
			succ[prev][r.Addr]++
		}
		prev, havePrev = r.Addr, true
	}
	// For nodes with >= 5 observations, the dominant successor should
	// carry the overwhelming majority (run breaks add a little noise).
	dominated, total := 0, 0
	for _, m := range succ {
		var sum, max int
		for _, n := range m {
			sum += n
			if n > max {
				max = n
			}
		}
		if sum < 5 {
			continue
		}
		total++
		if float64(max)/float64(sum) > 0.8 {
			dominated++
		}
	}
	if total == 0 {
		t.Fatal("no repeated nodes observed")
	}
	if frac := float64(dominated) / float64(total); frac < 0.8 {
		t.Errorf("only %.0f%% of nodes have a dominant successor; temporal correlation too weak", frac*100)
	}
}

func TestChaseSpatialIrregularity(t *testing.T) {
	// Consecutive loads must NOT be spatially adjacent (that is what
	// defeats BO/SMS on this class).
	p := ChaseParams{Nodes: 64 << 10, Streams: 1, HotFrac: 1, HotProb: 1, RunLen: 128, Gap: 0}
	recs := trace.Collect(NewChase(p, 5, 0), 20000)
	adjacent, pairs := 0, 0
	var prev mem.Addr
	havePrev := false
	for _, r := range recs {
		if r.Op != trace.Load {
			continue
		}
		if havePrev {
			pairs++
			d := int64(r.Addr) - int64(prev)
			if d < 0 {
				d = -d
			}
			if d <= 4*mem.LineSize {
				adjacent++
			}
		}
		prev, havePrev = r.Addr, true
	}
	if frac := float64(adjacent) / float64(pairs); frac > 0.05 {
		t.Errorf("%.1f%% of consecutive loads are near-adjacent; chase is too regular", frac*100)
	}
}

func TestChaseHotSkew(t *testing.T) {
	// With strong hot bias, a small set of lines should absorb most
	// accesses (the Fig. 1 reuse skew).
	p := ChaseParams{Nodes: 8 << 10, Streams: 1, HotFrac: 0.1, HotProb: 0.9, RunLen: 64, Gap: 0}
	recs := trace.Collect(NewChase(p, 11, 0), 200000)
	counts := map[mem.Addr]int{}
	loads := 0
	for _, r := range recs {
		if r.Op == trace.Load {
			counts[r.Addr]++
			loads++
		}
	}
	// Count accesses landing on the top 20% most-accessed lines.
	top := make([]int, 0, len(counts))
	for _, n := range counts {
		top = append(top, n)
	}
	// selection: simple sort
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j] > top[i] {
				top[i], top[j] = top[j], top[i]
			}
		}
		if i > len(top)/5 {
			break
		}
	}
	sum := 0
	for i := 0; i <= len(top)/5; i++ {
		sum += top[i]
	}
	if frac := float64(sum) / float64(loads); frac < 0.5 {
		t.Errorf("top 20%% of lines got %.0f%% of accesses, want >= 50%% (reuse skew)", frac*100)
	}
}

func TestChaseLoadDepEncoding(t *testing.T) {
	p := ChaseParams{Nodes: 512, Streams: 3, HotFrac: 1, HotProb: 1, RunLen: 32, Gap: 2}
	recs := trace.Collect(NewChase(p, 1, 0), 10000)
	for _, r := range recs {
		if r.Op == trace.Load && r.PC != pcNoise && r.LoadDep != 3 {
			t.Fatalf("chase load has LoadDep %d, want Streams=3", r.LoadDep)
		}
	}
}

func TestStrideRegularity(t *testing.T) {
	p := StrideParams{Streams: 1, StrideLines: 2, WorkingSetLines: 1 << 20, Gap: 1}
	recs := trace.Collect(NewStride(p, 0, 0), 3000)
	var prev mem.Addr
	havePrev := false
	for _, r := range recs {
		if r.Op != trace.Load {
			continue
		}
		if havePrev {
			if d := r.Addr - prev; d != 2*mem.LineSize {
				t.Fatalf("stride %d bytes, want %d", d, 2*mem.LineSize)
			}
		}
		prev, havePrev = r.Addr, true
	}
}

func TestStrideWorkingSetWraps(t *testing.T) {
	p := StrideParams{Streams: 1, StrideLines: 1, WorkingSetLines: 64, Gap: 0}
	recs := trace.Collect(NewStride(p, 0, 0), 1000)
	seen := map[mem.Addr]bool{}
	for _, r := range recs {
		if r.Op == trace.Load {
			seen[r.Addr] = true
		}
	}
	if len(seen) > 64 {
		t.Errorf("working set spans %d lines, bound 64", len(seen))
	}
}

func TestStrideEndlessStreamNeverRepeats(t *testing.T) {
	p := StrideParams{Streams: 1, StrideLines: 1, WorkingSetLines: 0, Gap: 0}
	recs := trace.Collect(NewStride(p, 0, 0), 5000)
	seen := map[mem.Addr]bool{}
	for _, r := range recs {
		if r.Op != trace.Load {
			continue
		}
		if seen[r.Addr] {
			t.Fatalf("address %#x repeated in compulsory-miss stream", r.Addr)
		}
		seen[r.Addr] = true
	}
}

func TestMixInterleavesBlocks(t *testing.T) {
	a := trace.NewLoopReader([]trace.Record{{PC: 0xA}})
	b := trace.NewLoopReader([]trace.Record{{PC: 0xB}})
	m := NewMix(10, []trace.Reader{a, b}, []int{2, 1})
	recs := trace.Collect(m, 60)
	// Expect 20 of A, then 10 of B, repeating.
	for i := 0; i < 20; i++ {
		if recs[i].PC != 0xA {
			t.Fatalf("record %d: PC %#x, want A-block", i, recs[i].PC)
		}
	}
	for i := 20; i < 30; i++ {
		if recs[i].PC != 0xB {
			t.Fatalf("record %d: PC %#x, want B-block", i, recs[i].PC)
		}
	}
	if recs[30].PC != 0xA {
		t.Error("mix did not cycle back to A")
	}
}

func TestSuitesComplete(t *testing.T) {
	if got := len(IrregularSuite()); got != 7 {
		t.Errorf("irregular suite has %d benchmarks, want 7 (Fig. 5)", got)
	}
	if got := len(RegularSuite()); got != 25 {
		t.Errorf("regular suite has %d benchmarks, want 25 (Fig. 8)", got)
	}
	if got := len(CloudSuite()); got != 5 {
		t.Errorf("CloudSuite has %d benchmarks, want 5 (Fig. 14)", got)
	}
	seen := map[string]bool{}
	for _, s := range All() {
		if seen[s.Name] {
			t.Errorf("duplicate benchmark name %q", s.Name)
		}
		seen[s.Name] = true
		r := s.New(1, 0)
		recs := trace.Collect(r, 1000)
		if len(recs) != 1000 {
			t.Errorf("%s: generator exhausted early", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("mcf"); !ok {
		t.Error("mcf not found")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("found a benchmark that does not exist")
	}
	if len(Names()) != len(All()) {
		t.Error("Names() length mismatch")
	}
}

func TestMixesDeterministicAndSized(t *testing.T) {
	a := Mixes(30, 4, 42, true)
	b := Mixes(30, 4, 42, true)
	if len(a) != 30 {
		t.Fatalf("got %d mixes, want 30", len(a))
	}
	for i := range a {
		if len(a[i].Specs) != 4 {
			t.Fatalf("mix %d has %d benchmarks, want 4", i, len(a[i].Specs))
		}
		for c := range a[i].Specs {
			if a[i].Specs[c].Name != b[i].Specs[c].Name {
				t.Fatal("mixes are not deterministic")
			}
		}
	}
	// irregularOnly mixes draw only from the irregular suite.
	irr := map[string]bool{}
	for _, s := range IrregularSuite() {
		irr[s.Name] = true
	}
	for _, m := range a {
		for _, s := range m.Specs {
			if !irr[s.Name] {
				t.Errorf("irregular-only mix contains %q", s.Name)
			}
		}
	}
}
