// Package workload synthesizes the benchmark suite. Real SPEC2006 /
// CloudSuite traces are not redistributable, so each benchmark is
// replaced by a deterministic generator that reproduces the statistics
// temporal prefetching is sensitive to: PC-localized repeat traversals
// over shuffled (spatially irregular) node graphs, working-set and
// metadata-footprint sizes relative to the LLC, metadata reuse skew
// (Fig. 1), and the regular strided/streaming behavior of the regular
// subset. DESIGN.md §2 documents the substitution argument.
package workload

import (
	"math/rand"

	"repro/internal/mem"
	"repro/internal/trace"
)

// ChaseParams configures a PC-localized pointer-chase generator, the
// access-pattern core of the irregular benchmarks (mcf, omnetpp,
// xalancbmk, ...).
type ChaseParams struct {
	// Nodes is the footprint in cache lines (one node per line).
	Nodes int
	// Streams is the number of concurrently chased linked structures,
	// each with its own load PC.
	Streams int
	// HotFrac is the fraction of the traversal order that is "hot";
	// HotProb is the probability a traversal run starts there. Skewed
	// values reproduce the Fig. 1 metadata-reuse distribution.
	HotFrac float64
	HotProb float64
	// WarmFrac/WarmProb optionally add a middle reuse tier right after
	// the hot region: visited regularly but less often. A warm tier
	// sized between the 512KB and 1MB metadata capacities is what makes
	// the store-size choice matter (Figs. 9, 15, 19).
	WarmFrac float64
	WarmProb float64
	// RunLen is the number of nodes followed per run before jumping to
	// a new start (temporal-stream break).
	RunLen int
	// SkipProb occasionally skips a node mid-run, injecting prediction
	// noise (bounds temporal-prefetch accuracy below 100%).
	SkipProb float64
	// Gap is the number of non-memory instructions between loads.
	Gap int
	// StoreEvery inserts a store every N loads (0 = never).
	StoreEvery int
	// NoiseProb replaces a slot's load with an uncorrelated random load
	// from a scratch region (separate PC).
	NoiseProb float64
}

// chase is the generator state.
type chase struct {
	p      ChaseParams
	base   mem.Addr
	order  []uint32 // traversal order: position -> node index
	pos    []int    // per-stream position
	steps  []int    // per-stream nodes followed in the current run
	rng    *rand.Rand
	stream int
	loads  uint64

	buf []trace.Record
	idx int
}

// NewChase returns an endless Reader for the given parameters. base
// offsets all addresses (multi-core runs give each core a disjoint
// address space); seed fixes the permutation and run schedule.
func NewChase(p ChaseParams, seed uint64, base mem.Addr) trace.Reader {
	if p.Nodes < 4 {
		panic("workload: ChaseParams.Nodes must be >= 4")
	}
	if p.Streams < 1 {
		p.Streams = 1
	}
	if p.RunLen < 1 {
		p.RunLen = 64
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	order := make([]uint32, p.Nodes)
	for i := range order {
		order[i] = uint32(i)
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	c := &chase{
		p: p, base: base, order: order, rng: rng,
		pos:   make([]int, p.Streams),
		steps: make([]int, p.Streams),
	}
	for s := range c.pos {
		c.pos[s] = c.runStart()
	}
	return c
}

// runStart picks a new traversal start, hot- then warm-biased.
func (c *chase) runStart() int {
	hotN := int(c.p.HotFrac * float64(c.p.Nodes))
	r := c.rng.Float64()
	if hotN > 0 && r < c.p.HotProb {
		return c.rng.Intn(hotN)
	}
	warmN := int(c.p.WarmFrac * float64(c.p.Nodes))
	if warmN > 0 && r < c.p.HotProb+c.p.WarmProb {
		return hotN + c.rng.Intn(warmN)
	}
	return c.rng.Intn(c.p.Nodes)
}

// addrAt returns the byte address of the node at traversal position p.
func (c *chase) addrAt(p int) mem.Addr {
	return c.base + mem.Addr(c.order[p])*mem.LineSize
}

// Next implements trace.Reader.
func (c *chase) Next() (trace.Record, bool) {
	if c.idx >= len(c.buf) {
		c.refill()
	}
	r := c.buf[c.idx]
	c.idx++
	return r, true
}

// pcStream returns the load PC of stream s.
func pcStream(s int) uint64 { return 0x400000 + uint64(s)*4 }

const (
	pcNoise = 0x700000
	pcStore = 0x710000
	pcNon   = 0x720000
)

// refill generates one slot: Gap non-memory instructions followed by
// one load (and occasionally a store), rotating round-robin across
// streams so that a stream's chain dependency is Streams loads back.
func (c *chase) refill() {
	c.buf = c.buf[:0]
	c.idx = 0
	for k := 0; k < c.p.Gap; k++ {
		c.buf = append(c.buf, trace.Record{PC: pcNon + uint64(k)*4, Op: trace.NonMem})
	}
	s := c.stream
	c.stream = (c.stream + 1) % c.p.Streams

	if c.p.NoiseProb > 0 && c.rng.Float64() < c.p.NoiseProb {
		// Uncorrelated scratch access; independent of the chains.
		addr := c.base + mem.Addr(1<<32) + mem.Addr(c.rng.Intn(1<<20))*mem.LineSize
		c.buf = append(c.buf, trace.Record{PC: pcNoise, Op: trace.Load, Addr: addr})
		return
	}

	// Advance the stream; runs end after RunLen nodes (with jitter) or
	// at the footprint boundary.
	pos := c.pos[s]
	load := trace.Record{
		PC:      pcStream(s),
		Op:      trace.Load,
		Addr:    c.addrAt(pos),
		LoadDep: uint8(c.p.Streams),
	}
	c.buf = append(c.buf, load)
	c.loads++

	step := 1
	if c.p.SkipProb > 0 && c.rng.Float64() < c.p.SkipProb {
		step = 2
	}
	pos += step
	c.steps[s]++
	// Runs end after this stream has followed RunLen nodes (per-stream
	// counters: a shared counter would make run breaks land on the same
	// stream whenever Streams divides RunLen) or at the footprint edge.
	if pos >= c.p.Nodes || c.steps[s] >= c.p.RunLen {
		pos = c.runStart()
		c.steps[s] = 0
	}
	c.pos[s] = pos

	if c.p.StoreEvery > 0 && c.loads%uint64(c.p.StoreEvery) == 0 {
		addr := c.base + mem.Addr(1<<33) + mem.Addr(c.loads%512)*mem.LineSize
		c.buf = append(c.buf, trace.Record{PC: pcStore, Op: trace.Store, Addr: addr})
	}
}

// StrideParams configures a regular strided generator (the regular
// SPEC subset and streaming server workloads).
type StrideParams struct {
	// Streams is the number of concurrent strided walkers.
	Streams int
	// StrideLines is the per-access stride in cache lines.
	StrideLines int
	// WorkingSetLines bounds each stream's region; the walker wraps
	// there. Zero means an endless fresh stream (pure compulsory
	// misses — what makes temporal prefetchers useless on nutch/
	// streaming, Fig. 14).
	WorkingSetLines int
	// Gap is the number of non-memory instructions between loads.
	Gap int
	// StoreEvery inserts a store every N loads (0 = never).
	StoreEvery int
	// SharedPC issues all streams from one load PC (an array-of-structs
	// loop walking several arrays). A per-PC stride predictor sees wild
	// apparent strides and fails; address-space prefetchers like BO
	// still find the offset. This is the pattern class where BO beats
	// the baseline L1 stride prefetcher (Fig. 8).
	SharedPC bool
}

type strider struct {
	p     StrideParams
	base  mem.Addr
	off   []uint64 // per-stream advance within its region
	s     int
	loads uint64
	buf   []trace.Record
	idx   int
}

// strideRegionGap separates stream regions in lines.
const strideRegionGap = 1 << 24

// NewStride returns an endless Reader of strided accesses.
func NewStride(p StrideParams, seed uint64, base mem.Addr) trace.Reader {
	if p.Streams < 1 {
		p.Streams = 1
	}
	if p.StrideLines < 1 {
		p.StrideLines = 1
	}
	st := &strider{p: p, base: base, off: make([]uint64, p.Streams)}
	for i := range st.off {
		st.off[i] = (seed + uint64(i)*13) % 64 // stagger phases
	}
	return st
}

// Next implements trace.Reader.
func (st *strider) Next() (trace.Record, bool) {
	if st.idx >= len(st.buf) {
		st.refill()
	}
	r := st.buf[st.idx]
	st.idx++
	return r, true
}

func (st *strider) refill() {
	st.buf = st.buf[:0]
	st.idx = 0
	for k := 0; k < st.p.Gap; k++ {
		st.buf = append(st.buf, trace.Record{PC: pcNon + uint64(k)*4, Op: trace.NonMem})
	}
	s := st.s
	st.s = (st.s + 1) % st.p.Streams
	off := st.off[s]
	if st.p.WorkingSetLines > 0 {
		off %= uint64(st.p.WorkingSetLines)
	}
	line := uint64(s)*strideRegionGap + off
	addr := st.base + mem.Addr(line)*mem.LineSize
	pc := uint64(0x500000)
	if !st.p.SharedPC {
		pc += uint64(s) * 4
	}
	st.buf = append(st.buf, trace.Record{PC: pc, Op: trace.Load, Addr: addr})
	st.off[s] += uint64(st.p.StrideLines)
	st.loads++
	if st.p.StoreEvery > 0 && st.loads%uint64(st.p.StoreEvery) == 0 {
		st.buf = append(st.buf, trace.Record{PC: pcStore, Op: trace.Store, Addr: addr + 8})
	}
}

// Mix interleaves readers in blocks according to integer weights:
// weight w contributes runs of w*blockLen records. It reproduces
// benchmarks with mixed phases (sphinx3's strided acoustic scans
// between irregular lexicon walks, soplex's sparse-matrix mixture).
type Mix struct {
	readers []trace.Reader
	weights []int
	block   int
	cur     int
	left    int
}

// NewMix builds a block-interleaved mixture. blockLen is the base run
// length per weight unit.
func NewMix(blockLen int, readers []trace.Reader, weights []int) *Mix {
	if len(readers) == 0 || len(readers) != len(weights) {
		panic("workload: NewMix needs equal non-empty readers and weights")
	}
	for _, w := range weights {
		if w < 1 {
			panic("workload: mix weights must be >= 1")
		}
	}
	m := &Mix{readers: readers, weights: weights, block: blockLen}
	m.left = weights[0] * blockLen
	return m
}

// Next implements trace.Reader.
func (m *Mix) Next() (trace.Record, bool) {
	if m.left == 0 {
		m.cur = (m.cur + 1) % len(m.readers)
		m.left = m.weights[m.cur] * m.block
	}
	m.left--
	return m.readers[m.cur].Next()
}
