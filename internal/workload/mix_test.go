package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestMixWeightsValidation(t *testing.T) {
	a := trace.NewLoopReader([]trace.Record{{PC: 1}})
	cases := []struct {
		readers []trace.Reader
		weights []int
	}{
		{nil, nil},
		{[]trace.Reader{a}, []int{1, 2}},
		{[]trace.Reader{a}, []int{0}},
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: NewMix did not panic", i)
				}
			}()
			NewMix(4, c.readers, c.weights)
		}()
	}
}

// Property: over a long window, each component's share of records
// approaches weight_i / sum(weights).
func TestMixShareProperty(t *testing.T) {
	f := func(w1, w2 uint8) bool {
		wa := int(w1%4) + 1
		wb := int(w2%4) + 1
		a := trace.NewLoopReader([]trace.Record{{PC: 0xA}})
		b := trace.NewLoopReader([]trace.Record{{PC: 0xB}})
		m := NewMix(16, []trace.Reader{a, b}, []int{wa, wb})
		const n = 16 * 200
		countA := 0
		for i := 0; i < n; i++ {
			rec, _ := m.Next()
			if rec.PC == 0xA {
				countA++
			}
		}
		want := float64(wa) / float64(wa+wb)
		got := float64(countA) / n
		return got > want-0.1 && got < want+0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSharedPCStride(t *testing.T) {
	shared := NewStride(StrideParams{Streams: 4, StrideLines: 1, Gap: 0, SharedPC: true}, 1, 0)
	pcs := map[uint64]bool{}
	for _, r := range trace.Collect(shared, 400) {
		if r.Op == trace.Load {
			pcs[r.PC] = true
		}
	}
	if len(pcs) != 1 {
		t.Errorf("SharedPC produced %d distinct load PCs, want 1", len(pcs))
	}
	perPC := NewStride(StrideParams{Streams: 4, StrideLines: 1, Gap: 0}, 1, 0)
	pcs = map[uint64]bool{}
	for _, r := range trace.Collect(perPC, 400) {
		if r.Op == trace.Load {
			pcs[r.PC] = true
		}
	}
	if len(pcs) != 4 {
		t.Errorf("per-PC mode produced %d distinct load PCs, want 4", len(pcs))
	}
}

func TestChaseValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewChase with 2 nodes did not panic")
		}
	}()
	NewChase(ChaseParams{Nodes: 2}, 1, 0)
}

func TestChaseStoreRegionIsBounded(t *testing.T) {
	p := ChaseParams{Nodes: 4096, Streams: 1, HotFrac: 1, HotProb: 1, RunLen: 64, Gap: 0, StoreEvery: 2}
	lines := map[uint64]bool{}
	for _, r := range trace.Collect(NewChase(p, 1, 0), 50_000) {
		if r.Op == trace.Store {
			lines[uint64(r.Addr)>>6] = true
		}
	}
	if len(lines) == 0 || len(lines) > 512 {
		t.Errorf("store scratch region spans %d lines, want (0, 512]", len(lines))
	}
}
