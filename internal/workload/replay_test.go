package workload

import (
	"bytes"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

func TestReplaySpec(t *testing.T) {
	c, err := trace.OpenCorpus(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cw, err := c.Create()
	if err != nil {
		t.Fatal(err)
	}
	recs := []trace.Record{
		{PC: 0x10, Op: trace.Load, Addr: 0x100},
		{PC: 0x14, Op: trace.NonMem},
		{PC: 0x18, Op: trace.Store, Addr: 0x200},
		{PC: 0x1c, Op: trace.Load, Addr: 0x140, LoadDep: 1},
	}
	for _, r := range recs {
		if err := cw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	id, err := cw.Commit()
	if err != nil {
		t.Fatal(err)
	}

	spec := Replay("my-trace", c, id, Server)
	if spec.Name != "my-trace" || spec.Class != Server {
		t.Fatalf("spec = %+v", spec)
	}
	base := mem.Addr(3) << 40
	r := spec.New(99, base) // seed is ignored: replay is content-addressed
	// Two passes: the reader must loop, re-applying the base offset to
	// memory operations only (PCs and NonMem records pass through raw).
	for pass := 0; pass < 2; pass++ {
		for i, want := range recs {
			if want.Op != trace.NonMem {
				want.Addr += base
			}
			got, ok := r.Next()
			if !ok {
				t.Fatalf("pass %d: reader ended at record %d", pass, i)
			}
			if got != want {
				t.Fatalf("pass %d record %d: got %+v, want %+v", pass, i, got, want)
			}
		}
	}

	if _, err := c.OpenLoop("sha256:" + string(bytes.Repeat([]byte{'0'}, 64))); err == nil {
		t.Error("OpenLoop of a missing trace did not error")
	}
}

// TestAllBenchmarksV2RoundTrip streams a prefix of every named
// benchmark generator through the TRC2 codec and back: the decoded
// stream must be record-identical, which is what keeps every figure
// byte-identical when its workload is routed through a v2 trace.
func TestAllBenchmarksV2RoundTrip(t *testing.T) {
	const n = 4096
	for _, name := range Names() {
		spec, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%s) missing", name)
		}
		recs := trace.Collect(spec.New(7, mem.Addr(1)<<40), n)
		if len(recs) != n {
			t.Fatalf("%s: generator yielded %d of %d records", name, len(recs), n)
		}
		var buf bytes.Buffer
		w := trace.NewWriterV2(&buf)
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				t.Fatalf("%s: encode: %v", name, err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		fr := trace.NewReaderV2(bytes.NewReader(buf.Bytes()))
		for i, want := range recs {
			got, ok := fr.Next()
			if !ok {
				t.Fatalf("%s: decode lost record %d: %v", name, i, fr.Err())
			}
			if got != want {
				t.Fatalf("%s: record %d changed: %+v -> %+v", name, i, want, got)
			}
		}
		if _, ok := fr.Next(); ok {
			t.Fatalf("%s: decoder invented extra records", name)
		}
		if err := fr.Err(); err != nil {
			t.Fatalf("%s: clean stream errored: %v", name, err)
		}
		if fr.ContentHash() != w.ContentHash() {
			t.Fatalf("%s: content hash mismatch: %s vs %s", name, fr.ContentHash(), w.ContentHash())
		}
	}
}
