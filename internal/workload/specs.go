package workload

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/trace"
)

// Class partitions the suite the way the paper's evaluation does.
type Class int

// Workload classes.
const (
	// Irregular is the memory-bound irregular SPEC2006 subset (Fig. 5).
	Irregular Class = iota
	// Regular is the remaining memory-intensive SPEC subset (Fig. 8).
	Regular
	// Server is the CloudSuite-like set (Fig. 14).
	Server
)

// Spec names one benchmark and builds its instruction stream.
type Spec struct {
	Name  string
	Class Class
	// New returns an endless trace for this benchmark. seed
	// perturbs schedules (mix diversity); base offsets the address
	// space (one disjoint space per core).
	New func(seed uint64, base mem.Addr) trace.Reader
}

func chaseSpec(name string, class Class, p ChaseParams) Spec {
	return Spec{Name: name, Class: class, New: func(seed uint64, base mem.Addr) trace.Reader {
		return NewChase(p, seed^hashName(name), base)
	}}
}

func strideSpec(name string, class Class, p StrideParams) Spec {
	return Spec{Name: name, Class: class, New: func(seed uint64, base mem.Addr) trace.Reader {
		return NewStride(p, seed^hashName(name), base)
	}}
}

// mixSpec interleaves an irregular chase with a regular strided phase.
func mixSpec(name string, class Class, cp ChaseParams, sp StrideParams, wChase, wStride int) Spec {
	return Spec{Name: name, Class: class, New: func(seed uint64, base mem.Addr) trace.Reader {
		c := NewChase(cp, seed^hashName(name), base)
		s := NewStride(sp, seed^hashName(name)^0x5555, base+(1<<36))
		return NewMix(256, []trace.Reader{c, s}, []int{wChase, wStride})
	}}
}

// Replay wraps a materialized corpus trace as a benchmark Spec: New
// streams the trace from disk in an endless loop (traces never fully
// materialize in memory), offsetting data addresses by base so one
// trace can replay on several cores with the disjoint address spaces
// multi-core runs assume. The generator seed is ignored — a trace is
// already a fixed instruction stream; its content hash is its
// identity. Construction with an id missing from the corpus panics
// (callers validate first via Corpus.Has; the experiment engine's
// panic isolation turns a late loss into a per-cell failure).
func Replay(name string, c *trace.Corpus, id string, class Class) Spec {
	return Spec{Name: name, Class: class, New: func(_ uint64, base mem.Addr) trace.Reader {
		r, err := c.OpenLoop(id)
		if err != nil {
			panic(fmt.Errorf("workload: replaying %s: %w", id, err))
		}
		return trace.Offset(r, base)
	}}
}

func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// IrregularSuite returns the irregular SPEC subset of Fig. 5: memory
// bound, pointer-based, PC-localized temporal streams. Footprints and
// reuse skew are sized so that metadata working sets straddle the
// 512KB-1MB store sizes, as the paper's Fig. 1/Fig. 9 imply.
func IrregularSuite() []Spec {
	return []Spec{
		// Modest hot set, lots of noise: the smallest Triage win.
		chaseSpec("gcc_166", Irregular, ChaseParams{
			Nodes: 128 << 10, Streams: 3, HotFrac: 0.25, HotProb: 0.55,
			RunLen: 96, SkipProb: 0.06, Gap: 9, StoreEvery: 6, NoiseProb: 0.08,
		}),
		// Large metadata working set (~320K entries > 1MB store): the
		// case where unbounded-metadata prefetchers (MISB) keep an edge
		// and Hawkeye's triage of entries matters most.
		chaseSpec("mcf", Irregular, ChaseParams{
			Nodes: 448 << 10, Streams: 1, HotFrac: 0.1, HotProb: 0.42,
			WarmFrac: 0.55, WarmProb: 0.5,
			RunLen: 280, SkipProb: 0.04, Gap: 5, StoreEvery: 8, NoiseProb: 0.02,
		}),
		mixSpec("soplex_k", Irregular, ChaseParams{
			Nodes: 160 << 10, Streams: 2, HotFrac: 0.4, HotProb: 0.7,
			RunLen: 128, SkipProb: 0.05, Gap: 6, StoreEvery: 10, NoiseProb: 0.03,
		}, StrideParams{
			Streams: 3, StrideLines: 1, WorkingSetLines: 192 << 10, Gap: 6, SharedPC: true,
		}, 3, 2),
		chaseSpec("omnetpp", Irregular, ChaseParams{
			Nodes: 288 << 10, Streams: 3, HotFrac: 0.1, HotProb: 0.42,
			WarmFrac: 0.39, WarmProb: 0.5,
			RunLen: 160, SkipProb: 0.05, Gap: 7, StoreEvery: 8, NoiseProb: 0.02,
		}),
		chaseSpec("astar_lakes", Irregular, ChaseParams{
			Nodes: 192 << 10, Streams: 1, HotFrac: 0.35, HotProb: 0.72,
			RunLen: 112, SkipProb: 0.07, Gap: 10, StoreEvery: 7, NoiseProb: 0.05,
		}),
		mixSpec("sphinx3", Irregular, ChaseParams{
			Nodes: 224 << 10, Streams: 3, HotFrac: 0.18, HotProb: 0.5,
			WarmFrac: 0.42, WarmProb: 0.44,
			RunLen: 320, SkipProb: 0.03, Gap: 5, StoreEvery: 0, NoiseProb: 0.02,
		}, StrideParams{
			Streams: 2, StrideLines: 2, WorkingSetLines: 256 << 10, Gap: 5, SharedPC: true,
		}, 4, 1),
		// Dense reuse over a store-sized metadata set: the biggest win.
		chaseSpec("xalancbmk", Irregular, ChaseParams{
			Nodes: 160 << 10, Streams: 6, HotFrac: 0.6, HotProb: 0.92,
			RunLen: 384, SkipProb: 0.02, Gap: 5, StoreEvery: 9, NoiseProb: 0.02,
		}),
	}
}

// RegularSuite returns the remaining memory-intensive SPEC subset of
// Fig. 8: strided and streaming kernels where BO shines, plus the
// capacity-sensitive loop benchmarks (bzip2) where a careless metadata
// partition hurts.
func RegularSuite() []Spec {
	seq := func(name string, streams, stride, wsLines, gap int) Spec {
		return strideSpec(name, Regular, StrideParams{
			Streams: streams, StrideLines: stride, WorkingSetLines: wsLines,
			Gap: gap, StoreEvery: 16,
		})
	}
	// multi-array kernels walk several arrays from one load PC: the
	// baseline per-PC stride prefetcher fails, BO succeeds (Fig. 8).
	seqShared := func(name string, streams, stride, wsLines, gap int) Spec {
		return strideSpec(name, Regular, StrideParams{
			Streams: streams, StrideLines: stride, WorkingSetLines: wsLines,
			Gap: gap, StoreEvery: 16, SharedPC: true,
		})
	}
	return []Spec{
		seq("perlbench", 2, 1, 24<<10, 12),
		// bzip2: a dense reuse loop (whose temporal pairs bait Triage's
		// sizer into provisioning a store) plus a sweep that makes the
		// total working set barely fit the LLC. The provisioned
		// metadata only yields redundant prefetches while the lost LLC
		// capacity costs real misses — the paper's Fig. 8 bzip2 story.
		mixSpec("bzip2", Regular, ChaseParams{
			Nodes: 18 << 10, Streams: 2, HotFrac: 1, HotProb: 1,
			RunLen: 160, SkipProb: 0.02, Gap: 7, StoreEvery: 12,
		}, StrideParams{
			Streams: 1, StrideLines: 1, WorkingSetLines: 7 << 10, Gap: 7,
		}, 2, 1),
		seq("gcc_ref", 3, 2, 48<<10, 10),
		seqShared("bwaves", 4, 1, 0, 5),
		seq("gamess", 1, 1, 4<<10, 24),
		seqShared("milc", 2, 4, 256<<10, 6),
		seqShared("zeusmp", 3, 2, 128<<10, 7),
		seq("gromacs", 2, 1, 12<<10, 16),
		seqShared("cactusADM", 2, 3, 96<<10, 8),
		seqShared("leslie3d", 4, 2, 160<<10, 6),
		seq("namd", 1, 1, 8<<10, 20),
		mixSpec("gobmk", Regular, ChaseParams{
			Nodes: 24 << 10, Streams: 2, HotFrac: 0.4, HotProb: 0.7,
			RunLen: 48, SkipProb: 0.1, Gap: 14, NoiseProb: 0.1,
		}, StrideParams{Streams: 1, StrideLines: 1, WorkingSetLines: 16 << 10, Gap: 12}, 1, 2),
		seq("dealII", 2, 2, 64<<10, 9),
		seq("soplex_rail", 3, 1, 96<<10, 7),
		seq("povray", 1, 1, 4<<10, 26),
		seq("calculix", 2, 2, 40<<10, 11),
		seq("hmmer", 1, 1, 10<<10, 13),
		seq("sjeng", 1, 1, 6<<10, 22),
		seqShared("GemsFDTD", 4, 2, 224<<10, 5),
		seqShared("libquantum", 1, 1, 0, 6),
		seq("h264ref", 2, 1, 20<<10, 12),
		seq("tonto", 1, 2, 16<<10, 15),
		seqShared("lbm", 4, 1, 0, 5),
		mixSpec("astar_rivers", Regular, ChaseParams{
			Nodes: 48 << 10, Streams: 2, HotFrac: 0.35, HotProb: 0.7,
			RunLen: 64, SkipProb: 0.08, Gap: 10, NoiseProb: 0.06,
		}, StrideParams{Streams: 2, StrideLines: 1, WorkingSetLines: 64 << 10, Gap: 8}, 1, 1),
		seqShared("wrf", 3, 2, 144<<10, 7),
	}
}

// CloudSuite returns the server workloads of Fig. 14. Cassandra,
// classification and cloud9 are irregular with large instruction/data
// footprints; nutch and streaming are regular and dominated by
// compulsory misses (fresh data), which no temporal prefetcher can
// cover.
func CloudSuite() []Spec {
	return []Spec{
		chaseSpec("cassandra", Server, ChaseParams{
			Nodes: 256 << 10, Streams: 5, HotFrac: 0.45, HotProb: 0.75,
			RunLen: 192, SkipProb: 0.05, Gap: 7, StoreEvery: 6, NoiseProb: 0.06,
		}),
		chaseSpec("classification", Server, ChaseParams{
			Nodes: 224 << 10, Streams: 4, HotFrac: 0.5, HotProb: 0.8,
			RunLen: 224, SkipProb: 0.04, Gap: 6, StoreEvery: 8, NoiseProb: 0.05,
		}),
		chaseSpec("cloud9", Server, ChaseParams{
			Nodes: 192 << 10, Streams: 6, HotFrac: 0.45, HotProb: 0.72,
			RunLen: 128, SkipProb: 0.06, Gap: 8, StoreEvery: 5, NoiseProb: 0.08,
		}),
		strideSpec("nutch", Server, StrideParams{
			Streams: 3, StrideLines: 1, WorkingSetLines: 0, Gap: 8, StoreEvery: 12, SharedPC: true,
		}),
		strideSpec("streaming", Server, StrideParams{
			Streams: 4, StrideLines: 2, WorkingSetLines: 0, Gap: 5, StoreEvery: 10, SharedPC: true,
		}),
	}
}

// All returns every benchmark.
func All() []Spec {
	var out []Spec
	out = append(out, IrregularSuite()...)
	out = append(out, RegularSuite()...)
	out = append(out, CloudSuite()...)
	return out
}

// ByName finds a benchmark in any suite.
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names lists all benchmark names, sorted.
func Names() []string {
	specs := All()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// Mix is built by Mixes: one benchmark per core.
type MixSpec struct {
	Name  string
	Specs []Spec
}

// Mixes builds n multi-programmed mixes of the given width, seeded
// deterministically. With irregularOnly, benchmarks come from the
// irregular suite only (the paper's 30 irregular mixes); otherwise from
// the union of irregular and regular memory-bound benchmarks (the 50
// mixed mixes).
func Mixes(n, width int, seed uint64, irregularOnly bool) []MixSpec {
	pool := IrregularSuite()
	if !irregularOnly {
		pool = append(pool, RegularSuite()...)
	}
	state := seed*2862933555777941757 + 3037000493
	rnd := func(mod int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(mod))
	}
	mixes := make([]MixSpec, 0, n)
	for i := 0; i < n; i++ {
		m := MixSpec{Name: fmt.Sprintf("mix%d", i+1)}
		for c := 0; c < width; c++ {
			m.Specs = append(m.Specs, pool[rnd(len(pool))])
		}
		mixes = append(mixes, m)
	}
	return mixes
}
