// Package cliutil holds the flag wiring shared by the cmd tools
// (experiments, sweep, triagesim, tracegen, triaged): pprof profiling,
// watchdog deadlines, and the expvar debug endpoint. Before it
// existed, each tool re-declared the same five flags with slightly
// different help text and teardown order; registering them here keeps
// the tools from drifting.
package cliutil

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Profile bundles the -cpuprofile/-memprofile flags.
type Profile struct {
	CPU *string
	Mem *string
}

// AddProfile registers the profiling flags on fs (pass
// flag.CommandLine in a cmd).
func AddProfile(fs *flag.FlagSet) *Profile {
	return &Profile{
		CPU: fs.String("cpuprofile", "", "write a CPU profile to this path"),
		Mem: fs.String("memprofile", "", "write a heap profile to this path"),
	}
}

// Start begins CPU profiling if requested. The returned stop func
// (always non-nil; defer it) ends the CPU profile and writes the heap
// profile if requested, reporting teardown problems to stderr — by
// then the tool's real output is already complete.
func (p *Profile) Start(stderr io.Writer) (stop func(), err error) {
	var stopCPU func()
	if *p.CPU != "" {
		stopCPU, err = telemetry.StartCPUProfile(*p.CPU)
		if err != nil {
			return nil, err
		}
	}
	return func() {
		if stopCPU != nil {
			stopCPU()
		}
		if *p.Mem != "" {
			if err := telemetry.WriteHeapProfile(*p.Mem); err != nil {
				fmt.Fprintln(stderr, err)
			}
		}
	}, nil
}

// Watchdog bundles the -deadline/-stall flags that bound individual
// simulations (see telemetry.StartWatchdog).
type Watchdog struct {
	Deadline *time.Duration
	Stall    *time.Duration
}

// AddWatchdog registers the watchdog flags on fs.
func AddWatchdog(fs *flag.FlagSet) *Watchdog {
	return &Watchdog{
		Deadline: fs.Duration("deadline", 0, "per-run wall-clock deadline (0 = none); an overrunning simulation is aborted and its cell failed"),
		Stall:    fs.Duration("stall", 0, "per-run stall timeout (0 = none); a simulation making no instruction progress for this long is aborted"),
	}
}

// Armed reports whether either bound is set.
func (w *Watchdog) Armed() bool { return *w.Deadline > 0 || *w.Stall > 0 }

// DebugHTTP bundles the -debughttp flag serving live expvar counters.
type DebugHTTP struct {
	Addr *string
}

// AddDebugHTTP registers the flag on fs.
func AddDebugHTTP(fs *flag.FlagSet) *DebugHTTP {
	return &DebugHTTP{
		Addr: fs.String("debughttp", "", "serve expvar live counters on this address (e.g. localhost:6060)"),
	}
}

// publishOnce guards the process-global expvar name: tests (and a tool
// that calls Serve twice) must not panic on re-Publish.
var publishOnce sync.Once

// Serve publishes prog under the process-global expvar name "pool" and
// serves /debug/vars on the configured address from a background
// goroutine. No-op when the flag is unset.
func (d *DebugHTTP) Serve(prog *telemetry.PoolProgress, stderr io.Writer) {
	if *d.Addr == "" {
		return
	}
	publishOnce.Do(func() {
		expvar.Publish("pool", expvar.Func(func() any { return prog.Snapshot() }))
	})
	addr := *d.Addr
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(stderr, "debughttp: %v\n", err)
		}
	}()
	fmt.Fprintf(stderr, "live counters: http://%s/debug/vars\n", addr)
}
