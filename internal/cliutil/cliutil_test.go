package cliutil

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestProfileFlagsRegisteredAndOff(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := AddProfile(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	var errBuf bytes.Buffer
	stop, err := p.Start(&errBuf)
	if err != nil {
		t.Fatal(err)
	}
	stop() // nothing requested: must be a clean no-op
	if errBuf.Len() != 0 {
		t.Errorf("no-op profile teardown wrote %q", errBuf.String())
	}
}

func TestProfileWritesFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := AddProfile(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop, err := p.Start(os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	for _, path := range []string{cpu, mem} {
		if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s not written (err %v)", path, err)
		}
	}
}

func TestWatchdogFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	w := AddWatchdog(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if w.Armed() {
		t.Error("watchdog armed with no flags set")
	}
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	w2 := AddWatchdog(fs2)
	if err := fs2.Parse([]string{"-deadline", "3s"}); err != nil {
		t.Fatal(err)
	}
	if !w2.Armed() || *w2.Deadline != 3*time.Second {
		t.Errorf("parsed deadline %v armed=%t, want 3s armed", *w2.Deadline, w2.Armed())
	}
	fs3 := flag.NewFlagSet("t", flag.ContinueOnError)
	w3 := AddWatchdog(fs3)
	if err := fs3.Parse([]string{"-stall", "1s"}); err != nil {
		t.Fatal(err)
	}
	if !w3.Armed() {
		t.Error("stall alone should arm the watchdog")
	}
}

func TestDebugHTTPOffIsNoop(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	d := AddDebugHTTP(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	var errBuf bytes.Buffer
	d.Serve(nil, &errBuf) // unset flag: must not publish or listen
	if errBuf.Len() != 0 {
		t.Errorf("disabled debughttp wrote %q", errBuf.String())
	}
}
