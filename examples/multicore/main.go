// Multi-core partitioning: four cores with very different memory
// behavior share one 8MB LLC. Triage-Dynamic provisions each core's
// metadata store separately — irregular cores get LLC ways for
// metadata, regular/compute cores get none (the paper's Fig. 19).
//
// Run with:
//
//	go run ./examples/multicore
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	machine := config.Default(4)
	llcTicks := uint64(machine.LLCLatency) * dram.TicksPerCycle

	// Four very different tenants.
	names := []string{"xalancbmk", "milc", "omnetpp", "povray"}
	kinds := []string{"irregular (XML tree walk)", "regular (strided physics)",
		"irregular (event sim)", "compute-bound (raytracer)"}

	run := func(withTriage bool) sim.Result {
		ws := make([]trace.Reader, 4)
		pfs := make([]prefetch.Prefetcher, 4)
		for c, n := range names {
			spec, ok := workload.ByName(n)
			if !ok {
				log.Fatalf("benchmark %s not found", n)
			}
			ws[c] = spec.New(uint64(c+1), mem.Addr(c+1)<<40)
			if withTriage {
				pfs[c] = core.New(core.Config{Mode: core.Dynamic, LLCLatencyTicks: llcTicks})
			}
		}
		m, err := sim.New(sim.Options{
			Machine:             machine,
			Workloads:           ws,
			Prefetchers:         pfs,
			WarmupInstructions:  2_000_000,
			MeasureInstructions: 1_500_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		return m.Run()
	}

	fmt.Println("4-core shared-LLC run: per-core Triage-Dynamic partitioning")
	fmt.Println()
	base := run(false)
	with := run(true)

	fmt.Printf("%-11s %-28s %-10s %-10s %-8s %s\n",
		"core", "workload", "base IPC", "w/ Triage", "speedup", "metadata ways (avg)")
	for c := range names {
		b, w := base.Cores[c], with.Cores[c]
		sp := 0.0
		if b.IPC() > 0 {
			sp = w.IPC() / b.IPC()
		}
		fmt.Printf("core %-6d %-28s %-10.4f %-10.4f %-8.3f %.2f of 16\n",
			c, names[c]+" — "+kinds[c][:12], b.IPC(), w.IPC(), sp, w.AvgMetadataWays)
	}
	fmt.Printf("\nmean speedup: %.3f\n", with.SpeedupOver(base))
	fmt.Println("expected shape: irregular cores are allocated metadata ways and speed")
	fmt.Println("up; the regular and compute-bound cores get ~0 ways and keep their LLC.")
}
