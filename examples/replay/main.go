// Replay: materialize a benchmark into the binary trace format, then
// replay the file through the simulator — the decoupled workflow for
// byte-reproducible runs and for bringing external traces (anything
// convertible to the codec) into the harness.
//
// Run with:
//
//	go run ./examples/replay
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "triage-replay")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "xalancbmk.trace")

	// 1. Materialize 3M instructions of the xalancbmk-like workload.
	spec, _ := workload.ByName("xalancbmk")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w := trace.NewWriter(f)
	r := spec.New(42, 0)
	const n = 3_000_000
	for i := 0; i < n; i++ {
		rec, _ := r.Next()
		if err := w.Write(rec); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("materialized %d instructions -> %s (%.1f MB, %.2f B/instr)\n",
		n, filepath.Base(path), float64(st.Size())/(1<<20), float64(st.Size())/n)

	// 2. Replay the file twice — baseline and Triage — looping it so
	// the measurement window is fully covered.
	run := func(pf prefetch.Prefetcher) sim.Result {
		g, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer g.Close()
		recs := trace.Collect(trace.NewFileReader(g), n)
		m, err := sim.New(sim.Options{
			Machine:             config.Default(1),
			Workloads:           []trace.Reader{trace.NewLoopReader(recs)},
			Prefetchers:         []prefetch.Prefetcher{pf},
			WarmupInstructions:  2_000_000,
			MeasureInstructions: 1_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		return m.Run()
	}

	base := run(nil)
	machine := config.Default(1)
	tri := core.New(core.Config{
		Mode:            core.Static,
		StaticBytes:     1 << 20,
		LLCLatencyTicks: uint64(machine.LLCLatency) * dram.TicksPerCycle,
	})
	with := run(tri)
	fmt.Printf("replayed baseline IPC %.4f, Triage IPC %.4f, speedup %.3f\n",
		base.IPC(), with.IPC(), with.SpeedupOver(base))

	// 3. Replays are byte-deterministic: same file, same result.
	again := run(nil)
	if again.IPC() == base.IPC() {
		fmt.Println("determinism check: identical IPC on replay — OK")
	} else {
		fmt.Printf("determinism check FAILED: %.6f vs %.6f\n", base.IPC(), again.IPC())
	}
}
