// Hybrid prefetching: an analytics pipeline alternating between a
// columnar scan phase (regular, BO's home turf) and an index-join phase
// (pointer chasing, Triage's home turf). The example shows that the
// BO+Triage hybrid captures both phases while each component alone
// captures only one — the paper's Fig. 10/14 story.
//
// Run with:
//
//	go run ./examples/hybrid
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/prefetch"
	"repro/internal/prefetch/bo"
	"repro/internal/prefetch/hybrid"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// pipeline interleaves an index join (irregular chase over 12MB of
// index nodes) with a columnar scan (four column arrays walked from one
// load PC — invisible to the baseline per-PC stride prefetcher).
func pipeline() trace.Reader {
	join := workload.NewChase(workload.ChaseParams{
		Nodes: 192 << 10, Streams: 2, HotFrac: 0.5, HotProb: 0.85,
		RunLen: 256, SkipProb: 0.03, Gap: 6,
	}, 3, 0)
	scan := workload.NewStride(workload.StrideParams{
		Streams: 4, StrideLines: 1, WorkingSetLines: 0, Gap: 5, SharedPC: true,
	}, 3, 1<<36)
	return workload.NewMix(512, []trace.Reader{join, scan}, []int{2, 1})
}

func main() {
	machine := config.Default(1)
	llcTicks := uint64(machine.LLCLatency) * dram.TicksPerCycle

	run := func(pf prefetch.Prefetcher) sim.Result {
		m, err := sim.New(sim.Options{
			Machine:             machine,
			Workloads:           []trace.Reader{pipeline()},
			Prefetchers:         []prefetch.Prefetcher{pf},
			WarmupInstructions:  4_000_000,
			MeasureInstructions: 2_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		return m.Run()
	}

	mkTriage := func() prefetch.Prefetcher {
		return core.New(core.Config{Mode: core.Dynamic, LLCLatencyTicks: llcTicks})
	}

	fmt.Println("analytics pipeline: 2/3 index join (irregular) + 1/3 column scan (regular)")
	fmt.Println()
	base := run(nil)
	fmt.Printf("%-14s IPC %.4f (baseline)\n", "none", base.IPC())
	for _, c := range []struct {
		name string
		pf   prefetch.Prefetcher
	}{
		{"BO", bo.New()},
		{"Triage", mkTriage()},
		{"Triage+BO", hybrid.New(mkTriage(), bo.New())},
	} {
		res := run(c.pf)
		fmt.Printf("%-14s IPC %.4f  speedup %.3f  coverage %4.1f%%\n",
			c.name, res.IPC(), res.SpeedupOver(base), res.CoverageOver(base)*100)
	}
	fmt.Println()
	fmt.Println("expected shape: the hybrid beats both components — BO covers the")
	fmt.Println("scan phase, Triage the join phase (paper Figs. 10, 14, 16, 18).")
}
