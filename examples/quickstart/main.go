// Quickstart: simulate one irregular benchmark on the paper's Table 1
// machine, first without an L2 prefetcher and then with Triage, and
// print the speedup, coverage and accuracy.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	machine := config.Default(1) // Table 1: 4-wide OoO, 2MB LLC, 32GB/s
	spec, ok := workload.ByName("mcf")
	if !ok {
		log.Fatal("benchmark not found")
	}

	run := func(pf prefetch.Prefetcher) sim.Result {
		m, err := sim.New(sim.Options{
			Machine:             machine,
			Workloads:           []trace.Reader{spec.New(1, 0)},
			Prefetchers:         []prefetch.Prefetcher{pf},
			WarmupInstructions:  3_000_000,
			MeasureInstructions: 2_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		return m.Run()
	}

	fmt.Println("simulating mcf-like pointer chase, 5M instructions ...")
	base := run(nil)

	triage := core.New(core.Config{
		Mode:            core.Dynamic, // 0/512KB/1MB chosen per epoch
		LLCLatencyTicks: uint64(machine.LLCLatency) * dram.TicksPerCycle,
	})
	with := run(triage)

	fmt.Printf("baseline IPC     : %.4f\n", base.IPC())
	fmt.Printf("with Triage IPC  : %.4f\n", with.IPC())
	fmt.Printf("speedup          : %.3f\n", with.SpeedupOver(base))
	fmt.Printf("coverage         : %.1f%% of baseline L2 misses eliminated\n", with.CoverageOver(base)*100)
	fmt.Printf("accuracy         : %.1f%% of prefetches used\n", with.Accuracy()*100)
	fmt.Printf("traffic overhead : %+.1f%% off-chip lines vs baseline\n", with.TrafficOverheadPct(base))
	fmt.Printf("metadata store   : %d bytes of LLC requested at end of run\n", triage.DesiredMetadataBytes())
}
