// Graph-database scenario: a server answering path queries over a
// pointer-linked adjacency structure — the workload class the paper's
// introduction motivates (irregular, pointer-based, impossible for
// spatial prefetchers). The example sweeps the prefetcher zoo and the
// prefetch degree, printing a small report of who covers what.
//
// Run with:
//
//	go run ./examples/graphdb
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/prefetch"
	"repro/internal/prefetch/bo"
	"repro/internal/prefetch/sms"
	"repro/internal/prefetch/stms"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// graphWorkload models the query engine: a 20M-node graph (one cache
// line per node), a hot community that most queries touch, and long
// traversal chains with occasional branches (skips).
func graphWorkload() trace.Reader {
	return workload.NewChase(workload.ChaseParams{
		Nodes:     288 << 10, // ~18MB of adjacency nodes, far beyond the LLC
		Streams:   2,         // two concurrent query executors
		HotFrac:   0.15,      // hot community
		HotProb:   0.5,
		WarmFrac:  0.45, // popular periphery
		WarmProb:  0.42,
		RunLen:    220, // average path length before the next query
		SkipProb:  0.05,
		Gap:       6,
		NoiseProb: 0.03,
	}, 7, 0)
}

func main() {
	machine := config.Default(1)
	llcTicks := uint64(machine.LLCLatency) * dram.TicksPerCycle

	run := func(pf prefetch.Prefetcher) sim.Result {
		m, err := sim.New(sim.Options{
			Machine:             machine,
			Workloads:           []trace.Reader{graphWorkload()},
			Prefetchers:         []prefetch.Prefetcher{pf},
			WarmupInstructions:  4_000_000,
			MeasureInstructions: 2_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		return m.Run()
	}

	fmt.Println("graph query engine, 6M instructions per configuration")
	fmt.Println()
	base := run(nil)
	fmt.Printf("%-22s IPC %.4f (baseline)\n", "no L2 prefetcher", base.IPC())

	configs := []struct {
		name string
		mk   func() prefetch.Prefetcher
	}{
		{"best-offset (BO)", func() prefetch.Prefetcher { return bo.New() }},
		{"spatial (SMS)", func() prefetch.Prefetcher { return sms.New() }},
		{"temporal (STMS, ideal)", func() prefetch.Prefetcher { return stms.New() }},
		{"Triage 1MB", func() prefetch.Prefetcher {
			return core.New(core.Config{Mode: core.Static, StaticBytes: 1 << 20, LLCLatencyTicks: llcTicks})
		}},
		{"Triage dynamic", func() prefetch.Prefetcher {
			return core.New(core.Config{Mode: core.Dynamic, LLCLatencyTicks: llcTicks})
		}},
	}
	for _, c := range configs {
		res := run(c.mk())
		fmt.Printf("%-22s IPC %.4f  speedup %.3f  coverage %4.1f%%  accuracy %4.1f%%\n",
			c.name, res.IPC(), res.SpeedupOver(base), res.CoverageOver(base)*100, res.Accuracy()*100)
	}

	fmt.Println()
	fmt.Println("Triage degree sweep (chained metadata lookups per trigger):")
	for _, d := range []int{1, 2, 4, 8} {
		tri := core.New(core.Config{
			Mode: core.Static, StaticBytes: 1 << 20,
			Degree: d, LLCLatencyTicks: llcTicks,
		})
		res := run(tri)
		fmt.Printf("  degree %-2d  speedup %.3f  accuracy %4.1f%%\n",
			d, res.SpeedupOver(base), res.Accuracy()*100)
	}
}
