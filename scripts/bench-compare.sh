#!/usr/bin/env bash
# bench-compare.sh — throughput regression gate.
#
# Reruns a quick subset of the figure suite in -bench mode and compares
# per-experiment simulation throughput (sim_instructions_per_sec)
# against the committed BENCH_sim.json. Exits nonzero if any compared
# experiment slows down by more than the threshold.
#
# The committed numbers are machine-dependent: the gate is meaningful
# on hardware comparable to the machine that wrote BENCH_sim.json, so
# it is opt-in (BENCH_COMPARE=1 ./scripts/verify.sh) rather than part
# of the default verify run. The rerun copies the instruction windows
# and worker count from the committed report so the comparison is
# like-for-like.
#
# Environment:
#   BENCH_COMPARE_FIGS       experiments to rerun (default fig05)
#   BENCH_COMPARE_THRESHOLD  allowed slowdown in percent (default 10)
#   BENCH_COMPARE_FILE       committed baseline (default BENCH_sim.json)
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=${BENCH_COMPARE_FILE:-BENCH_sim.json}
figs=${BENCH_COMPARE_FIGS:-fig05}
threshold=${BENCH_COMPARE_THRESHOLD:-10}

if [ ! -f "$baseline" ]; then
    echo "bench-compare: no baseline $baseline" >&2
    exit 2
fi

fresh=$(mktemp)
trap 'rm -f "$fresh"' EXIT

# Pull the run configuration out of the committed total row so the
# fresh run measures the same thing. Handles both the legacy bare-array
# schema and the current versioned one.
read -r warmup measure mwarmup mmeasure workers < <(python3 - "$baseline" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
rows = d if isinstance(d, list) else d.get("experiments", [])
total = next((r for r in rows if r.get("experiment") == "total"), None)
if total is None:
    sys.exit("bench-compare: baseline has no 'total' row")
def u(k, dflt):
    v = total.get(k, 0) or 0
    return v if v else dflt
print(u("warmup_instructions", 1000000), u("measure_instructions", 1000000),
      u("multi_warmup_instructions", 500000), u("multi_measure_instructions", 400000),
      u("workers", 1))
PY
)

echo "bench-compare: rerunning $figs (warmup=$warmup measure=$measure, -j $workers)..."
go run ./cmd/experiments -bench "$fresh" -fig "$figs" \
    -warmup "$warmup" -measure "$measure" \
    -mwarmup "$mwarmup" -mmeasure "$mmeasure" \
    -j "$workers" >/dev/null

python3 - "$baseline" "$fresh" "$threshold" <<'PY'
import json, sys

def rows(path):
    d = json.load(open(path))
    lst = d if isinstance(d, list) else d.get("experiments", [])
    return {r["experiment"]: r for r in lst}

base, fresh, threshold = rows(sys.argv[1]), rows(sys.argv[2]), float(sys.argv[3])
failed = False
for name, row in fresh.items():
    if name == "total" or name not in base:
        continue
    b, n = base[name]["sim_instructions_per_sec"], row["sim_instructions_per_sec"]
    drop = (b - n) / b * 100 if b > 0 else 0.0
    status = "ok"
    if drop > threshold:
        status, failed = "REGRESSION", True
    print(f"bench-compare: {name}: baseline {b/1e6:.2f}M instr/s, "
          f"now {n/1e6:.2f}M instr/s ({-drop:+.1f}%) {status}")
if failed:
    sys.exit(f"bench-compare: throughput dropped more than {threshold:.0f}%")
PY

# Service-level p99 gate: replay every virtual-clock scenario of the
# committed BENCH_service.json (the row carries its full run config)
# and compare submit-to-result p99. Virtual rows are deterministic, so
# any drift beyond the threshold means the admission pipeline's
# modeled behavior changed, not the machine.
service_baseline=${BENCH_COMPARE_SERVICE_FILE:-BENCH_service.json}
if [ -f "$service_baseline" ]; then
    svc_fresh=$(mktemp -d)
    trap 'rm -f "$fresh"; rm -rf "$svc_fresh"' EXIT
    go build -o "$svc_fresh/triageload" ./cmd/triageload
    while read -r scenario process rate jobs seed dedup workers queue fafter ffor cworkers p99; do
        "$svc_fresh/triageload" -scenario "$scenario" -process "$process" \
            -rate "$rate" -jobs "$jobs" -seed "$seed" -dedup "$dedup" \
            -workers "$workers" -queue "$queue" -clock virtual -validate 0 \
            -faultafter "$fafter" -faultfor "$ffor" -cluster-workers "$cworkers" \
            -o "$svc_fresh/$scenario.json" 2>/dev/null
        now=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['service'][0]['p99_ms'])" \
            "$svc_fresh/$scenario.json")
        python3 - "$scenario" "$p99" "$now" "$threshold" <<'PY'
import sys
scenario, base, now, threshold = sys.argv[1], float(sys.argv[2]), float(sys.argv[3]), float(sys.argv[4])
drift = abs(now - base) / base * 100 if base > 0 else 0.0
status = "ok" if drift <= threshold else "REGRESSION"
print(f"bench-compare: service {scenario}: baseline p99 {base:.3f}ms, now {now:.3f}ms ({drift:.1f}% drift) {status}")
if status != "ok":
    sys.exit(f"bench-compare: service p99 drifted more than {threshold:.0f}%")
PY
    done < <(python3 - "$service_baseline" <<'PY'
import json, sys
f = json.load(open(sys.argv[1]))
for r in f.get("service", []):
    if r.get("clock") != "virtual":
        continue
    print(r["scenario"], r["process"], r["rate_per_sec"], r["jobs"], r["seed"],
          r["dedup_frac"], r["workers"], r["queue_cap"],
          r.get("fault_after", 0), r.get("fault_for", 0),
          r.get("cluster_workers", 0), r["p99_ms"])
PY
)
else
    echo "bench-compare: no $service_baseline; skipping the service p99 gate"
fi
echo "bench-compare: ok"
