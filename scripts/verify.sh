#!/bin/sh
# Tier-1 verification: formatting, build, tests, vet, race-detector
# runs over the packages with concurrency (the parallel experiment
# engine and the simulator it drives), and an end-to-end smoke run of
# the CLI tools with telemetry enabled. Run from the repo root:
#
#   ./scripts/verify.sh
#
# Note: the -race runs re-execute the experiment smoke tests under the
# race detector and take a few minutes on a small machine.
set -eux

# gofmt -l prints offending files but exits 0; fail explicitly.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go test ./...
go vet ./...
go test -race ./internal/experiments ./internal/sim

# End-to-end smoke: one small figure through the experiment driver, and
# one telemetry-instrumented run producing sampled series + event trace.
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
go run ./cmd/experiments -fig fig05 -warmup 200000 -measure 200000 -j 2 >"$smokedir/fig05.txt"
go run ./cmd/triagesim -bench mcf -pf triage-1m -warmup 100000 -measure 200000 \
    -sample 50000 -sampleout "$smokedir/samples.jsonl" \
    -events "$smokedir/events.jsonl" >"$smokedir/triagesim.txt"
test -s "$smokedir/samples.jsonl"
test -s "$smokedir/events.jsonl"
grep -q '"meta_ways"' "$smokedir/samples.jsonl"
