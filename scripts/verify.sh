#!/bin/sh
# Tier-1 verification: formatting, build, tests, vet, race-detector
# runs over the packages with concurrency (the parallel experiment
# engine and the simulator it drives), and an end-to-end smoke run of
# the CLI tools with telemetry enabled. Run from the repo root:
#
#   ./scripts/verify.sh
#
# Note: the -race runs re-execute the experiment smoke tests under the
# race detector and take a few minutes on a small machine.
set -eux

# gofmt -l prints offending files but exits 0; fail explicitly.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go test ./...
go vet ./...
go test -race ./internal/experiments ./internal/sim
go test -race ./internal/cache ./internal/replacement
go test -race ./internal/service
go test -race ./internal/obs ./cmd/triageload
go test -race ./internal/cluster

# Fault-injection suite: panic isolation, watchdog deadlines, bounded
# retry, checkpoint round-trips, and the invariant checkers.
go test -run 'TestFuture|TestPanic|TestRetry|TestDeadline|TestCheckpoint|TestInvariant|TestStoreCheck|TestTriageCheck|TestMapCheck|TestLRUCheck|TestCheckInvariants' \
    ./internal/experiments ./internal/sim ./internal/cache ./internal/flat ./internal/core ./internal/dram

# Durability suite: the crashable/fault-injecting VFS, crash recovery
# and quarantine in the checkpoint store, degraded read-only mode, and
# the kill/restart chaos harness.
go test ./internal/vfs
go test -run 'TestCheckpointV2ReadCompat|TestCheckpointMidFile|TestCheckpointCrash|TestCheckpointPutReports' ./internal/experiments
go test -run 'TestDegraded|TestSubmitRejected|TestChaos' ./internal/service

# Fuzz the hostile-input parsers briefly: the checkpoint record
# scanner, the job-spec decoder, and both binary trace decoders.
go test -run '^$' -fuzz '^FuzzCheckpointParse$' -fuzztime 5s ./internal/experiments
go test -run '^$' -fuzz '^FuzzJobSpecDecode$' -fuzztime 5s ./internal/service
go test -run '^$' -fuzz '^FuzzTraceDecode$' -fuzztime 5s ./internal/trace
go test -run '^$' -fuzz '^FuzzTraceV2Decode$' -fuzztime 5s ./internal/trace

# End-to-end smoke: one small figure through the experiment driver, and
# one telemetry-instrumented run producing sampled series + event trace.
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
go run ./cmd/experiments -fig fig05 -warmup 200000 -measure 200000 -j 2 >"$smokedir/fig05.txt"

# Kill-and-resume smoke: an interrupted checkpointed run restarted with
# -resume must reproduce the uninterrupted run's output byte for byte.
go build -o "$smokedir/experiments" ./cmd/experiments
"$smokedir/experiments" -fig fig05 -warmup 200000 -measure 200000 -j 2 \
    -csv "$smokedir/clean" >/dev/null
"$smokedir/experiments" -fig fig05 -warmup 200000 -measure 200000 -j 2 \
    -resume "$smokedir/ckpt" >/dev/null &
resume_pid=$!
sleep 2
kill -9 "$resume_pid" 2>/dev/null || true # may already have finished
wait "$resume_pid" || true
"$smokedir/experiments" -fig fig05 -warmup 200000 -measure 200000 -j 2 \
    -resume "$smokedir/ckpt" -csv "$smokedir/resumed" >/dev/null
cmp "$smokedir/clean/fig05.csv" "$smokedir/resumed/fig05.csv"
go run ./cmd/triagesim -bench mcf -pf triage-1m -warmup 100000 -measure 200000 \
    -sample 50000 -sampleout "$smokedir/samples.jsonl" \
    -events "$smokedir/events.jsonl" >"$smokedir/triagesim.txt"
test -s "$smokedir/samples.jsonl"
test -s "$smokedir/events.jsonl"
grep -q '"meta_ways"' "$smokedir/samples.jsonl"

# Service smoke: the same job run directly (triagesim -json) and through
# the triaged HTTP service (triagectl) must produce byte-identical
# results and sampled series; a second submission must be served from
# the warm store, still byte-identical; SIGTERM must drain cleanly.
go build -o "$smokedir/triagesim" ./cmd/triagesim
go build -o "$smokedir/triaged" ./cmd/triaged
go build -o "$smokedir/triagectl" ./cmd/triagectl
"$smokedir/triagesim" -bench mcf -pf triage-1m -warmup 100000 -measure 200000 \
    -sample 50000 -sampleout "$smokedir/direct-samples.jsonl" \
    -json "$smokedir/direct.json" >/dev/null
"$smokedir/triaged" -listen 127.0.0.1:0 -portfile "$smokedir/port" \
    -store "$smokedir/store" -queue 8 -workers 2 &
triaged_pid=$!
for _ in $(seq 1 50); do
    [ -s "$smokedir/port" ] && break
    sleep 0.1
done
addr=$(cat "$smokedir/port")
"$smokedir/triagectl" -addr "$addr" submit -bench mcf -pf triage-1m \
    -warmup 100000 -measure 200000 -sample 50000 -wait \
    -o "$smokedir/api.json" -telemetry "$smokedir/api-samples.jsonl"
cmp "$smokedir/direct.json" "$smokedir/api.json"
cmp "$smokedir/direct-samples.jsonl" "$smokedir/api-samples.jsonl"
# Observability smoke against the live server: /metrics must serve a
# parseable Prometheus exposition carrying the service counters, and
# the finished job must have a fetchable trace reaching result-served.
"$smokedir/triagectl" -addr "$addr" metrics -prom >"$smokedir/metrics.prom"
grep -q '^triaged_submitted_total 1$' "$smokedir/metrics.prom"
grep -q '^# TYPE triaged_run_seconds histogram$' "$smokedir/metrics.prom"
jobid=$("$smokedir/triagectl" -addr "$addr" submit -bench mcf -pf triage-1m \
    -warmup 100000 -measure 200000 -sample 50000)
"$smokedir/triagectl" -addr "$addr" result -o "$smokedir/traced.json" "$jobid"
"$smokedir/triagectl" -addr "$addr" trace "$jobid" >"$smokedir/trace.txt"
grep -q 'admit' "$smokedir/trace.txt"
grep -q 'result-served' "$smokedir/trace.txt"
kill -TERM "$triaged_pid"
wait "$triaged_pid" # graceful drain must exit 0
# Restart on the same store: the resubmission must be served from the
# warm result store (no re-simulation), still byte-identical.
rm -f "$smokedir/port"
"$smokedir/triaged" -listen 127.0.0.1:0 -portfile "$smokedir/port" \
    -store "$smokedir/store" -queue 8 -workers 2 &
triaged_pid=$!
for _ in $(seq 1 50); do
    [ -s "$smokedir/port" ] && break
    sleep 0.1
done
addr=$(cat "$smokedir/port")
"$smokedir/triagectl" -addr "$addr" submit -bench mcf -pf triage-1m \
    -warmup 100000 -measure 200000 -sample 50000 -wait \
    -o "$smokedir/warm.json" 2>"$smokedir/warm.log"
cmp "$smokedir/direct.json" "$smokedir/warm.json"
grep -q "warm store" "$smokedir/warm.log"
kill -TERM "$triaged_pid"
wait "$triaged_pid"

# Trace-corpus smoke: materialize a generator prefix into a content-
# addressed corpus (tracegen prints the sha256 id on stdout), replay it
# by hash through triagesim, and require the byte-identical result the
# live generator produces; -inspect must read the TRC2 entry. The
# capture uses the generator's core-0 base (1<<40) and is long enough
# that the replay loop never wraps inside the simulated window.
go build -o "$smokedir/tracegen" ./cmd/tracegen
tid=$("$smokedir/tracegen" -bench mcf -seed 42 -n 700000 -base $((1<<40)) \
    -corpus "$smokedir/corpus")
"$smokedir/tracegen" -inspect "$smokedir/corpus/sha256-${tid#sha256:}.trc2" \
    | grep -q 'records      : 700000'
"$smokedir/triagesim" -bench mcf -pf triage-1m -seed 42 \
    -warmup 100000 -measure 200000 -json "$smokedir/gen.json" >/dev/null
"$smokedir/triagesim" -corpus "$smokedir/corpus" -trace "$tid" -pf triage-1m \
    -warmup 100000 -measure 200000 -json "$smokedir/replay.json" >/dev/null
cmp "$smokedir/gen.json" "$smokedir/replay.json"

# Capacity-harness smoke: with a fixed seed and the virtual clock,
# two triageload runs (in-memory store, real-service validation pass
# included) must produce byte-identical BENCH_service.json rows, and
# benchmerge -service must fold them into a report.
go build -o "$smokedir/triageload" ./cmd/triageload
go build -o "$smokedir/benchmerge" ./cmd/benchmerge
"$smokedir/triageload" -scenario smoke -process poisson -rate 500 -jobs 60 \
    -seed 7 -validate 4 -o "$smokedir/svc-a.json"
"$smokedir/triageload" -scenario smoke -process poisson -rate 500 -jobs 60 \
    -seed 7 -validate 4 -o "$smokedir/svc-b.json"
cmp "$smokedir/svc-a.json" "$smokedir/svc-b.json"
"$smokedir/benchmerge" -service -file "$smokedir/BENCH_service.json" \
    <"$smokedir/svc-a.json"
grep -q '"scenario": "smoke"' "$smokedir/BENCH_service.json"

# Degraded-mode capacity smoke: a sustained-overload scenario whose
# result store fails mid-run must report 503 rejections, stay byte-
# identical across reruns (virtual clock), and survive the same fault
# window against a real in-process server with a live vfs.Faulty.
"$smokedir/triageload" -scenario overload-smoke -process poisson -rate 600 \
    -jobs 150 -seed 9 -faultafter 40 -faultfor 60 -validate 4 \
    -o "$smokedir/deg-a.json"
"$smokedir/triageload" -scenario overload-smoke -process poisson -rate 600 \
    -jobs 150 -seed 9 -faultafter 40 -faultfor 60 -validate 4 \
    -o "$smokedir/deg-b.json"
cmp "$smokedir/deg-a.json" "$smokedir/deg-b.json"
grep -q '"rejected_503": [1-9]' "$smokedir/deg-a.json"
"$smokedir/triageload" -scenario overload-wall -process poisson -rate 2000 \
    -jobs 60 -seed 9 -clock wall -faultafter 15 -faultfor 25 -validate 4 \
    -o - >/dev/null

# Cluster smoke: the same two figures run once on a plain single-node
# triaged and once distributed across a coordinator plus two worker
# processes — one of which is kill -9'd mid-run, so its leased job is
# requeued onto the survivor. The tables must be byte-identical and
# the cluster status view must have shown both workers.
go build -o "$smokedir/triageworker" ./cmd/triageworker
rm -f "$smokedir/port"
"$smokedir/triaged" -listen 127.0.0.1:0 -portfile "$smokedir/port" \
    -store "$smokedir/solo-store" -queue 16 -workers 2 &
triaged_pid=$!
for _ in $(seq 1 50); do
    [ -s "$smokedir/port" ] && break
    sleep 0.1
done
addr=$(cat "$smokedir/port")
"$smokedir/triagectl" -addr "$addr" figures -j 2 -o "$smokedir/solo" \
    -warmup 200000 -measure 200000 fig05 fig06
kill -TERM "$triaged_pid"
wait "$triaged_pid"
rm -f "$smokedir/port"
"$smokedir/triaged" -cluster -lease 2s -listen 127.0.0.1:0 \
    -portfile "$smokedir/port" -store "$smokedir/cluster-store" -queue 16 &
triaged_pid=$!
for _ in $(seq 1 50); do
    [ -s "$smokedir/port" ] && break
    sleep 0.1
done
addr=$(cat "$smokedir/port")
"$smokedir/triageworker" -coordinator "$addr" -name smoke-a &
worker_a=$!
"$smokedir/triageworker" -coordinator "$addr" -name smoke-b &
worker_b=$!
"$smokedir/triagectl" -addr "$addr" figures -j 2 -o "$smokedir/clus" \
    -warmup 200000 -measure 200000 fig05 fig06 &
figures_pid=$!
sleep 1
"$smokedir/triagectl" -addr "$addr" status >"$smokedir/cluster-status.txt"
grep -q 'smoke-a' "$smokedir/cluster-status.txt"
grep -q 'smoke-b' "$smokedir/cluster-status.txt"
kill -9 "$worker_b" 2>/dev/null || true
wait "$figures_pid"
cmp "$smokedir/solo/fig05.txt" "$smokedir/clus/fig05.txt"
cmp "$smokedir/solo/fig06.txt" "$smokedir/clus/fig06.txt"
# The kill was observed: the dead worker's lease lapsed and its figure
# was requeued onto the survivor.
"$smokedir/triagectl" -addr "$addr" status | grep -q 'requeued: [1-9]'
# Capacity harness against the live cluster: the wall clock drives the
# coordinator over HTTP, jobs execute on the surviving worker, and the
# observability validation (traces + Prometheus) must hold end to end.
"$smokedir/triageload" -scenario cluster-wall -process poisson -rate 200 \
    -jobs 30 -seed 12 -clock wall -addr "$addr" -validate 4 -o - >/dev/null
kill -TERM "$worker_a"
wait "$worker_a"
wait "$worker_b" 2>/dev/null || true
kill -TERM "$triaged_pid"
wait "$triaged_pid"

# Netfault chaos smoke: the same two figures again, now with the
# coordinator's listener resetting a fraction of accepted connections
# and every worker RPC passing through a seeded fault transport
# (refusals, resets, lost responses, truncation, duplicate delivery,
# latency spikes). The retry/idempotency layer must absorb all of it:
# tables byte-identical to the single-node run, and the fault counters
# reported on exit. The copylocks vet guards the wire types the retry
# paths copy around.
go vet -copylocks ./internal/netfault ./internal/cluster
rm -f "$smokedir/port"
"$smokedir/triaged" -cluster -lease 2s -listen 127.0.0.1:0 \
    -portfile "$smokedir/port" -store "$smokedir/chaos-store" -queue 16 \
    -netfault 'seed=11,refuse=0.05' 2>"$smokedir/chaos-coord.log" &
triaged_pid=$!
for _ in $(seq 1 50); do
    [ -s "$smokedir/port" ] && break
    sleep 0.1
done
addr=$(cat "$smokedir/port")
"$smokedir/triageworker" -coordinator "$addr" -name chaos-a -jitterseed 21 \
    -netfault 'seed=21,refuse=0.05,drop=0.05,dup=0.05,delay=0.2:5ms' \
    2>"$smokedir/chaos-a.log" &
worker_a=$!
"$smokedir/triageworker" -coordinator "$addr" -name chaos-b -jitterseed 22 \
    -netfault 'seed=22,reset=0.05,trunc=0.05,dup=0.05,delay=0.2:5ms' \
    2>"$smokedir/chaos-b.log" &
worker_b=$!
"$smokedir/triagectl" -addr "$addr" figures -j 2 -o "$smokedir/chaosfig" \
    -warmup 200000 -measure 200000 fig05 fig06
cmp "$smokedir/solo/fig05.txt" "$smokedir/chaosfig/fig05.txt"
cmp "$smokedir/solo/fig06.txt" "$smokedir/chaosfig/fig06.txt"
kill -TERM "$worker_a" "$worker_b"
wait "$worker_a"
wait "$worker_b"
kill -TERM "$triaged_pid"
wait "$triaged_pid"
grep -q 'netfault injected' "$smokedir/chaos-coord.log"
grep -q 'netfault injected' "$smokedir/chaos-a.log"
grep -q 'netfault injected' "$smokedir/chaos-b.log"

# Throughput regression gate (opt-in: the committed baseline numbers
# are machine-dependent, so only run where they are comparable).
if [ "${BENCH_COMPARE:-0}" = "1" ]; then
    ./scripts/bench-compare.sh
fi
