#!/bin/sh
# Tier-1 verification: build, tests, vet, and race-detector runs over
# the packages with concurrency (the parallel experiment engine and the
# simulator it drives). Run from the repo root:
#
#   ./scripts/verify.sh
#
# Note: the -race runs re-execute the experiment smoke tests under the
# race detector and take a few minutes on a small machine.
set -eux

go build ./...
go test ./...
go vet ./...
go test -race ./internal/experiments ./internal/sim
